package fastio

import (
	"bytes"
	"io"
	"maps"
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/edge"
	"repro/internal/vfs"
	"repro/internal/xrand"
)

// encodePacked runs l through a PackedWriter and returns the wire bytes.
func encodePacked(t testing.TB, l *edge.List) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := Packed{}.NewWriter(&buf)
	if err := WriteEdges(w, l, 0, l.Len()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodePacked reads everything back through the bulk path.
func decodePacked(t testing.TB, b []byte) *edge.List {
	t.Helper()
	r := Packed{}.NewReader(bytes.NewReader(b))
	l := edge.NewList(0)
	for {
		if _, err := ReadEdges(r, l, 1<<14); err != nil {
			if err == io.EOF {
				return l
			}
			t.Fatal(err)
		}
	}
}

// degenerateLists covers the shapes the pipeline can feed a codec: empty,
// single edge, boundary values, constant u, strictly descending u (the
// deltas go negative), and a multi-block sorted list.
func degenerateLists() map[string]*edge.List {
	empty := edge.NewList(0)
	one := edge.NewList(1)
	one.Append(42, 7)
	bounds := edge.NewList(4)
	bounds.Append(0, 0)
	bounds.Append(math.MaxUint64, math.MaxUint64)
	bounds.Append(0, math.MaxUint64)
	bounds.Append(math.MaxUint64, 0)
	constU := edge.NewList(100)
	for i := 0; i < 100; i++ {
		constU.Append(5, uint64(i))
	}
	desc := edge.NewList(100)
	for i := 100; i > 0; i-- {
		desc.Append(uint64(i)<<40, uint64(i))
	}
	multi := edge.NewList(3 * PackedBlockEdges)
	for i := 0; i < 3*PackedBlockEdges; i++ {
		multi.Append(uint64(i/16), uint64(i*2654435761)%(1<<20))
	}
	return map[string]*edge.List{
		"empty": empty, "one": one, "bounds": bounds,
		"constU": constU, "descending": desc, "multiBlock": multi,
	}
}

func TestPackedRoundTripDegenerate(t *testing.T) {
	lists := degenerateLists()
	for _, name := range slices.Sorted(maps.Keys(lists)) {
		l := lists[name]
		t.Run(name, func(t *testing.T) {
			got := decodePacked(t, encodePacked(t, l))
			if !got.Equal(l) {
				t.Errorf("round trip corrupted %s: %d vs %d edges", name, got.Len(), l.Len())
			}
		})
	}
}

func TestAllCodecsRoundTripDegenerate(t *testing.T) {
	lists := degenerateLists()
	for _, c := range Codecs() {
		for _, name := range slices.Sorted(maps.Keys(lists)) {
			l := lists[name]
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				var buf bytes.Buffer
				w := c.NewWriter(&buf)
				if err := WriteEdges(w, l, 0, l.Len()); err != nil {
					t.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				r := c.NewReader(&buf)
				got := edge.NewList(0)
				for {
					if _, err := ReadEdges(r, got, 4096); err != nil {
						if err == io.EOF {
							break
						}
						t.Fatal(err)
					}
				}
				if !got.Equal(l) {
					t.Errorf("%s round trip corrupted %s", c.Name(), name)
				}
			})
		}
	}
}

// TestPackedBulkMatchesPerEdge pins the wire format: the bulk writer and
// the per-edge writer must produce identical bytes, and the per-edge
// reader must decode the bulk writer's output.
func TestPackedBulkMatchesPerEdge(t *testing.T) {
	g := xrand.New(11)
	l := edge.NewList(0)
	for i := 0; i < 2*PackedBlockEdges+37; i++ {
		l.Append(g.Uint64n(1<<30), g.Uint64n(1<<30))
	}
	bulk := encodePacked(t, l)
	var buf bytes.Buffer
	w := Packed{}.NewWriter(&buf)
	for i := 0; i < l.Len(); i++ {
		if err := w.WriteEdge(l.U[i], l.V[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bulk, buf.Bytes()) {
		t.Fatal("bulk and per-edge writers disagree on the wire bytes")
	}
	r := Packed{}.NewReader(bytes.NewReader(bulk))
	got := edge.NewList(0)
	for {
		u, v, err := r.ReadEdge()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got.Append(u, v)
	}
	if !got.Equal(l) {
		t.Fatal("per-edge reader cannot decode bulk writer output")
	}
}

// TestPackedSortedSmallerThanBinary is the codec's reason to exist: on
// kernel-1-sorted input it must beat the 16-byte fixed-width record.
func TestPackedSortedSmallerThanBinary(t *testing.T) {
	g := xrand.New(3)
	l := edge.NewList(0)
	u := uint64(0)
	for i := 0; i < 50000; i++ {
		u += g.Uint64n(3)
		l.Append(u, g.Uint64n(1<<20))
	}
	b := encodePacked(t, l)
	perEdge := float64(len(b)) / float64(l.Len())
	if perEdge >= 8 {
		t.Errorf("packed sorted encoding = %.2f B/edge, want well under binary's 16", perEdge)
	}
}

func TestPackedEmptyAndMagicOnlyFiles(t *testing.T) {
	// Zero-byte stream: valid empty.
	r := Packed{}.NewReader(bytes.NewReader(nil))
	if _, _, err := r.ReadEdge(); err != io.EOF {
		t.Errorf("zero-byte file: err = %v, want io.EOF", err)
	}
	// Flushed-empty stream: magic only, also valid empty.
	b := encodePacked(t, edge.NewList(0))
	if string(b) != packedMagic {
		t.Fatalf("empty flushed stream = %q, want just the magic", b)
	}
	r = Packed{}.NewReader(bytes.NewReader(b))
	if _, _, err := r.ReadEdge(); err != io.EOF {
		t.Errorf("magic-only file: err = %v, want io.EOF", err)
	}
	// io.EOF must repeat.
	if _, _, err := r.ReadEdge(); err != io.EOF {
		t.Errorf("second read after EOF: err = %v, want io.EOF", err)
	}
}

// TestPackedTruncation truncates a valid stream at every byte boundary;
// the reader must return the intact prefix edges and then an error or a
// clean EOF — never invented edges, never a panic.
func TestPackedTruncation(t *testing.T) {
	l := edge.NewList(600)
	for i := 0; i < 600; i++ {
		l.Append(uint64(i), uint64(i)*3)
	}
	full := encodePacked(t, l)
	for cut := 0; cut < len(full); cut++ {
		r := Packed{}.NewReader(bytes.NewReader(full[:cut]))
		got := edge.NewList(0)
		var err error
		for err == nil {
			_, err = ReadEdges(r, got, 256)
		}
		if err == io.EOF && cut > 0 && cut < len(full) && got.Len() == l.Len() {
			t.Fatalf("cut=%d: truncated stream decoded all %d edges cleanly", cut, l.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if got.U[i] != l.U[i] || got.V[i] != l.V[i] {
				t.Fatalf("cut=%d: edge %d = (%d,%d), want (%d,%d)", cut, i, got.U[i], got.V[i], l.U[i], l.V[i])
			}
		}
	}
}

func TestPackedCorruption(t *testing.T) {
	mk := func(tail []byte) []byte { return append([]byte(packedMagic), tail...) }
	cases := map[string][]byte{
		"badMagic":        []byte("NOTPACKD"),
		"shortMagic":      []byte(packedMagic[:4]),
		"zeroCount":       mk([]byte{0x00, 0x02, 1, 1}),
		"hugeCount":       mk([]byte{0xFF, 0xFF, 0x7F, 0x10}),
		"payloadTooShort": mk([]byte{0x02, 0x01, 1}),
		"payloadTooLong":  mk(append([]byte{0x01, 0x7F}, make([]byte, 127)...)),
		"truncPayload":    mk([]byte{0x02, 0x04, 1, 1}),
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		b := cases[name]
		t.Run(name, func(t *testing.T) {
			r := Packed{}.NewReader(bytes.NewReader(b))
			var err error
			for err == nil {
				_, _, err = r.ReadEdge()
			}
			if err == io.EOF {
				t.Errorf("%s accepted as a clean stream", name)
			}
		})
	}
	// Trailing bytes inside a block payload: header says 1 edge but the
	// payload holds more bytes than that edge consumes.
	b := mk([]byte{0x01, 0x04, 2, 2, 0, 0}) // 1 edge, 4-byte payload, edge uses 2
	r := Packed{}.NewReader(bytes.NewReader(b))
	_, _, err := r.ReadEdge()
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing payload bytes: err = %v, want trailing-bytes error", err)
	}
}

func TestDetect(t *testing.T) {
	fs := vfs.NewMem()
	l := randomList(9, 64)
	for _, c := range Codecs() {
		// With extension: decided by name alone.
		if err := WriteStriped(fs, "x/"+c.Name(), c, 1, l); err != nil {
			t.Fatal(err)
		}
		got, err := Detect(fs, StripeName("x/"+c.Name(), c, 0))
		if err != nil || got.Name() != c.Name() {
			t.Errorf("Detect by extension: got %v, %v; want %s", got, err, c.Name())
		}
	}
	// Extensionless content sniffing.
	write := func(name string, c Codec) {
		w, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		sink := c.NewWriter(w)
		if err := WriteEdges(sink, l, 0, l.Len()); err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("raw-tsv", TSV{})
	write("raw-bin", Binary{})
	write("raw-packed", Packed{})
	for name, want := range map[string]string{
		"raw-tsv": "tsv", "raw-bin": "bin", "raw-packed": "packed",
	} {
		got, err := Detect(fs, name)
		if err != nil || got.Name() != want {
			t.Errorf("Detect(%s) = %v, %v; want %s", name, got, err, want)
		}
	}
	// Extensionless empty file is undetectable.
	w, _ := fs.Create("raw-empty")
	w.Close()
	if _, err := Detect(fs, "raw-empty"); err == nil {
		t.Error("Detect accepted an extensionless empty file")
	}
}

func TestDetectStriped(t *testing.T) {
	l := randomList(10, 100)
	for _, c := range Codecs() {
		fs := vfs.NewMem()
		if err := WriteStriped(fs, "k0", c, 3, l); err != nil {
			t.Fatal(err)
		}
		got, err := DetectStriped(fs, "k0")
		if err != nil || got.Name() != c.Name() {
			t.Errorf("DetectStriped = %v, %v; want %s", got, err, c.Name())
		}
	}
	if _, err := DetectStriped(vfs.NewMem(), "k0"); err == nil {
		t.Error("DetectStriped accepted an empty FS")
	}
}

func TestCodecByName(t *testing.T) {
	for _, name := range CodecNames() {
		c, err := CodecByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("CodecByName(%s) = %v, %v", name, c, err)
		}
	}
	if _, err := CodecByName("zstd"); err == nil {
		t.Error("CodecByName accepted an unknown name")
	}
}

func TestPackedBytesPerEdgeEstimate(t *testing.T) {
	if got := (Packed{}).BytesPerEdge(1 << 20); got <= 2 || got >= 16 {
		t.Errorf("BytesPerEdge(2^20) = %v, want in (2, 16)", got)
	}
}

// FuzzPackedDecode feeds arbitrary bytes to the decoder.  The invariants:
// never panic, never allocate unboundedly (the header range checks), and
// whatever decodes must re-encode and re-decode to the same edges.
func FuzzPackedDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(packedMagic))
	l := edge.NewList(300)
	for i := 0; i < 300; i++ {
		l.Append(uint64(i/7), uint64(i)*997)
	}
	var buf bytes.Buffer
	w := Packed{}.NewWriter(&buf)
	for i := 0; i < l.Len(); i++ {
		if err := w.WriteEdge(l.U[i], l.V[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(append([]byte(packedMagic), 0x01, 0x02, 0x00, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := Packed{}.NewReader(bytes.NewReader(data))
		got := edge.NewList(0)
		var err error
		for err == nil {
			_, err = ReadEdges(r, got, 4096)
			if got.Len() > 1<<22 {
				t.Fatalf("decoder produced %d edges from %d input bytes", got.Len(), len(data))
			}
		}
		if err != io.EOF {
			return // corrupt input rejected: fine
		}
		// Clean decode: the edges must survive a round trip.
		back := decodePacked(t, encodePacked(t, got))
		if !back.Equal(got) {
			t.Fatal("re-encoded clean decode does not round-trip")
		}
	})
}
