package fastio

import (
	"testing"

	"repro/internal/vfs"
)

func TestStripedSinkRoundTrip(t *testing.T) {
	l := randomList(10, 1003)
	fs := vfs.NewMem()
	sink, err := NewStripedSink(fs, "s", TSV{}, 4, int64(l.Len()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.Len(); i++ {
		if err := sink.WriteEdge(l.U[i], l.V[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) != 4 {
		t.Fatalf("wrote %d stripes, want 4: %v", len(names), names)
	}
	got, err := ReadStriped(fs, "s", TSV{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Error("striped sink round trip corrupted edges")
	}
}

func TestStripedSinkOverflowGoesToLastStripe(t *testing.T) {
	fs := vfs.NewMem()
	// Expect 10 edges but deliver 25: stripes 0..3 take 2 each (quota
	// 10/5=2), stripe 4 absorbs the rest.
	sink, err := NewStripedSink(fs, "o", TSV{}, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 25; i++ {
		if err := sink.WriteEdge(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) != 5 {
		t.Fatalf("stripe count = %d, want 5", len(names))
	}
	got, err := ReadStriped(fs, "o", TSV{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 25 {
		t.Errorf("read back %d edges, want 25", got.Len())
	}
	for i := 0; i < 25; i++ {
		if u, _ := got.At(i); u != uint64(i) {
			t.Fatalf("order broken at %d: %d", i, u)
		}
	}
}

func TestStripedSinkEmptyStreamMakesOneStripe(t *testing.T) {
	fs := vfs.NewMem()
	sink, err := NewStripedSink(fs, "e", TSV{}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStriped(fs, "e", TSV{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty sink produced %d edges", got.Len())
	}
}

func TestStripedSinkInvalidNFiles(t *testing.T) {
	if _, err := NewStripedSink(vfs.NewMem(), "x", TSV{}, 0, 10); err == nil {
		t.Error("nfiles=0 accepted")
	}
}

func TestStripedSinkFlushKeepsStripeOpen(t *testing.T) {
	fs := vfs.NewMem()
	sink, _ := NewStripedSink(fs, "f", TSV{}, 1, 100)
	sink.WriteEdge(1, 2)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sink.WriteEdge(3, 4)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStriped(fs, "f", TSV{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("got %d edges after mid-stream Flush", got.Len())
	}
}
