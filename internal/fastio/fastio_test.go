package fastio

import (
	"bytes"
	"io"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/edge"
	"repro/internal/vfs"
	"repro/internal/xrand"
)

func TestAppendUintMatchesStrconv(t *testing.T) {
	cases := []uint64{0, 1, 9, 10, 99, 100, 12345, math.MaxUint64, math.MaxUint64 - 1}
	for _, v := range cases {
		got := string(AppendUint(nil, v))
		want := strconv.FormatUint(v, 10)
		if got != want {
			t.Errorf("AppendUint(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestAppendUintProperty(t *testing.T) {
	err := quick.Check(func(v uint64) bool {
		return string(AppendUint(nil, v)) == strconv.FormatUint(v, 10)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAppendUintAppends(t *testing.T) {
	got := string(AppendUint([]byte("x="), 42))
	if got != "x=42" {
		t.Errorf("AppendUint with prefix = %q", got)
	}
}

func TestParseUintRoundTrip(t *testing.T) {
	err := quick.Check(func(v uint64) bool {
		n, err := ParseUint(AppendUint(nil, v))
		return err == nil && n == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestParseUintErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "1x", "-1", " 1", "18446744073709551616", "99999999999999999999"} {
		if _, err := ParseUint([]byte(bad)); err == nil {
			t.Errorf("ParseUint(%q) succeeded, want error", bad)
		}
	}
	if n, err := ParseUint([]byte("18446744073709551615")); err != nil || n != math.MaxUint64 {
		t.Errorf("ParseUint(max) = %d, %v", n, err)
	}
}

// codecs under test: every registered codec, kept in sync by the
// detection registry so a new codec cannot dodge the property tests.
var allCodecs = Codecs()

func randomList(seed uint64, n int) *edge.List {
	g := xrand.New(seed)
	l := edge.NewList(n)
	for i := 0; i < n; i++ {
		l.Append(g.Uint64n(1<<20), g.Uint64n(1<<20))
	}
	return l
}

func TestCodecRoundTrip(t *testing.T) {
	l := randomList(1, 1000)
	// Include boundary values.
	l.Append(0, 0)
	l.Append(math.MaxUint64, math.MaxUint64)
	for _, c := range allCodecs {
		t.Run(c.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			w := c.NewWriter(&buf)
			for i := 0; i < l.Len(); i++ {
				if err := w.WriteEdge(l.U[i], l.V[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			r := c.NewReader(&buf)
			got := edge.NewList(l.Len())
			for {
				u, v, err := r.ReadEdge()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got.Append(u, v)
			}
			if !got.Equal(l) {
				t.Errorf("round trip lost or reordered edges: %d vs %d", got.Len(), l.Len())
			}
		})
	}
}

func TestTSVWireFormat(t *testing.T) {
	var buf bytes.Buffer
	w := TSV{}.NewWriter(&buf)
	w.WriteEdge(3, 14)
	w.WriteEdge(15, 92)
	w.Flush()
	want := "3\t14\n15\t92\n"
	if buf.String() != want {
		t.Errorf("TSV encoding = %q, want %q", buf.String(), want)
	}
}

func TestNaiveAndFastTSVIdenticalOutput(t *testing.T) {
	l := randomList(7, 500)
	var fast, naive bytes.Buffer
	fw, nw := TSV{}.NewWriter(&fast), NaiveTSV{}.NewWriter(&naive)
	for i := 0; i < l.Len(); i++ {
		fw.WriteEdge(l.U[i], l.V[i])
		nw.WriteEdge(l.U[i], l.V[i])
	}
	fw.Flush()
	nw.Flush()
	if fast.String() != naive.String() {
		t.Error("optimized and naive TSV writers disagree on the wire format")
	}
}

func TestTSVReaderCrossParsesNaiveOutput(t *testing.T) {
	// Differential test: each TSV reader must parse the other writer's bytes.
	l := randomList(8, 300)
	var buf bytes.Buffer
	w := NaiveTSV{}.NewWriter(&buf)
	for i := 0; i < l.Len(); i++ {
		w.WriteEdge(l.U[i], l.V[i])
	}
	w.Flush()
	r := TSV{}.NewReader(&buf)
	for i := 0; i < l.Len(); i++ {
		u, v, err := r.ReadEdge()
		if err != nil {
			t.Fatal(err)
		}
		if u != l.U[i] || v != l.V[i] {
			t.Fatalf("edge %d = (%d,%d), want (%d,%d)", i, u, v, l.U[i], l.V[i])
		}
	}
}

func TestTSVReaderTolerance(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  [][2]uint64
	}{
		{"no trailing newline", "1\t2\n3\t4", [][2]uint64{{1, 2}, {3, 4}}},
		{"crlf", "1\t2\r\n3\t4\r\n", [][2]uint64{{1, 2}, {3, 4}}},
		{"empty", "", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := TSV{}.NewReader(strings.NewReader(c.input))
			var got [][2]uint64
			for {
				u, v, err := r.ReadEdge()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, [2]uint64{u, v})
			}
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("got %v, want %v", got, c.want)
				}
			}
		})
	}
}

func TestTSVReaderErrors(t *testing.T) {
	for _, bad := range []string{"a\t2\n", "1 2\n", "1\t\n", "\t2\n", "1\t2x\n", "18446744073709551616\t0\n"} {
		r := TSV{}.NewReader(strings.NewReader(bad))
		if _, _, err := r.ReadEdge(); err == nil || err == io.EOF {
			t.Errorf("ReadEdge(%q) err = %v, want parse error", bad, err)
		}
	}
}

func TestBinaryReaderTruncated(t *testing.T) {
	r := Binary{}.NewReader(bytes.NewReader(make([]byte, 20))) // 1.25 records
	if _, _, err := r.ReadEdge(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, _, err := r.ReadEdge(); err == nil || err == io.EOF {
		t.Errorf("truncated record err = %v, want explicit error", err)
	}
}

func TestBytesPerEdge(t *testing.T) {
	if got := (Binary{}).BytesPerEdge(1 << 20); got != 16 {
		t.Errorf("Binary BytesPerEdge = %v", got)
	}
	got := (TSV{}).BytesPerEdge(1 << 20)
	if got < 8 || got > 18 {
		t.Errorf("TSV BytesPerEdge(2^20) = %v, want plausible text size", got)
	}
}

func TestWriteReadStriped(t *testing.T) {
	l := randomList(3, 1017) // deliberately not divisible by stripe counts
	for _, nfiles := range []int{1, 2, 3, 8, 16} {
		for _, c := range allCodecs {
			fs := vfs.NewMem()
			if err := WriteStriped(fs, "k0/edges", c, nfiles, l); err != nil {
				t.Fatalf("WriteStriped(nfiles=%d,%s): %v", nfiles, c.Name(), err)
			}
			names, err := fs.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != nfiles {
				t.Fatalf("wrote %d files, want %d", len(names), nfiles)
			}
			got, err := ReadStriped(fs, "k0/edges", c)
			if err != nil {
				t.Fatalf("ReadStriped: %v", err)
			}
			if !got.Equal(l) {
				t.Fatalf("striped round trip (nfiles=%d, %s) corrupted edges", nfiles, c.Name())
			}
		}
	}
}

func TestWriteStripedRejectsZeroFiles(t *testing.T) {
	if err := WriteStriped(vfs.NewMem(), "x", TSV{}, 0, edge.NewList(0)); err == nil {
		t.Error("nfiles=0 accepted")
	}
}

func TestReadStripedMissing(t *testing.T) {
	if _, err := ReadStriped(vfs.NewMem(), "absent", TSV{}); err == nil {
		t.Error("reading absent prefix should fail")
	}
}

func TestStripedSourceStreams(t *testing.T) {
	l := randomList(4, 505)
	fs := vfs.NewMem()
	if err := WriteStriped(fs, "e", TSV{}, 7, l); err != nil {
		t.Fatal(err)
	}
	src, err := NewStripedSource(fs, "e", TSV{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := edge.NewList(l.Len())
	for {
		u, v, err := src.ReadEdge()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got.Append(u, v)
	}
	if !got.Equal(l) {
		t.Error("StripedSource does not preserve order across stripes")
	}
}

func TestCountEdges(t *testing.T) {
	l := randomList(5, 321)
	n, err := CountEdges(NewListSource(l))
	if err != nil || n != 321 {
		t.Errorf("CountEdges = %d, %v", n, err)
	}
}

func TestListSinkSource(t *testing.T) {
	l := edge.NewList(0)
	sink := NewListSink(l)
	sink.WriteEdge(1, 2)
	sink.WriteEdge(3, 4)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	src := NewListSource(l)
	u, v, err := src.ReadEdge()
	if err != nil || u != 1 || v != 2 {
		t.Errorf("first edge = (%d,%d), %v", u, v, err)
	}
	src.ReadEdge()
	if _, _, err := src.ReadEdge(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestStripeNameOrdering(t *testing.T) {
	// Zero padding must make lexicographic order equal stripe order.
	a := StripeName("p", TSV{}, 2)
	b := StripeName("p", TSV{}, 10)
	if !(a < b) {
		t.Errorf("stripe names out of order: %q >= %q", a, b)
	}
}

func BenchmarkTSVWrite(b *testing.B) {
	l := randomList(1, 10000)
	b.SetBytes(int64(l.Len()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := TSV{}.NewWriter(io.Discard)
		for j := 0; j < l.Len(); j++ {
			w.WriteEdge(l.U[j], l.V[j])
		}
		w.Flush()
	}
}

func BenchmarkTSVRead(b *testing.B) {
	l := randomList(1, 10000)
	var buf bytes.Buffer
	w := TSV{}.NewWriter(&buf)
	for j := 0; j < l.Len(); j++ {
		w.WriteEdge(l.U[j], l.V[j])
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(int64(l.Len()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := TSV{}.NewReader(bytes.NewReader(data))
		for {
			if _, _, err := r.ReadEdge(); err == io.EOF {
				break
			}
		}
	}
}

func BenchmarkNaiveTSVRead(b *testing.B) {
	l := randomList(1, 10000)
	var buf bytes.Buffer
	w := NaiveTSV{}.NewWriter(&buf)
	for j := 0; j < l.Len(); j++ {
		w.WriteEdge(l.U[j], l.V[j])
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(int64(l.Len()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NaiveTSV{}.NewReader(bytes.NewReader(data))
		for {
			if _, _, err := r.ReadEdge(); err == io.EOF {
				break
			}
		}
	}
}
