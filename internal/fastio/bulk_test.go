package fastio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/edge"
	"repro/internal/vfs"
)

// perEdgeOnlySink hides a sink's bulk method so the package-level
// WriteEdges exercises its per-edge fallback.
type perEdgeOnlySink struct{ s EdgeSink }

func (p perEdgeOnlySink) WriteEdge(u, v uint64) error { return p.s.WriteEdge(u, v) }
func (p perEdgeOnlySink) Flush() error                { return p.s.Flush() }

// perEdgeOnlySource hides a source's bulk method likewise.
type perEdgeOnlySource struct{ s EdgeSource }

func (p perEdgeOnlySource) ReadEdge() (uint64, uint64, error) { return p.s.ReadEdge() }

// TestBulkFallbackMatchesNative: for every codec, the per-edge fallback
// path and the native bulk path must produce identical bytes and decode
// to identical edges.
func TestBulkFallbackMatchesNative(t *testing.T) {
	l := randomList(21, 3000)
	for _, c := range Codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			var native, fallback bytes.Buffer
			w := c.NewWriter(&native)
			if err := WriteEdges(w, l, 0, l.Len()); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			fw := c.NewWriter(&fallback)
			if err := WriteEdges(perEdgeOnlySink{fw}, l, 0, l.Len()); err != nil {
				t.Fatal(err)
			}
			if err := fw.Flush(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(native.Bytes(), fallback.Bytes()) {
				t.Fatal("bulk and per-edge writes disagree on the wire bytes")
			}
			for _, wrap := range []bool{false, true} {
				var src EdgeSource = c.NewReader(bytes.NewReader(native.Bytes()))
				if wrap {
					src = perEdgeOnlySource{src}
				}
				got := edge.NewList(0)
				for {
					n, err := ReadEdges(src, got, 777) // deliberately odd batch size
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					if n == 0 {
						t.Fatal("ReadEdges returned (0, nil): contract requires progress or io.EOF")
					}
				}
				if !got.Equal(l) {
					t.Fatalf("read (wrapped=%v) corrupted edges", wrap)
				}
			}
		})
	}
}

func TestWriteEdgesBounds(t *testing.T) {
	l := randomList(22, 10)
	sink := NewListSink(edge.NewList(0))
	for _, r := range [][2]int{{-1, 5}, {0, 11}, {7, 3}} {
		if err := WriteEdges(sink, l, r[0], r[1]); err == nil {
			t.Errorf("range [%d:%d) accepted", r[0], r[1])
		}
	}
	if err := WriteEdges(sink, l, 4, 4); err != nil {
		t.Errorf("empty range rejected: %v", err)
	}
}

func TestReadEdgesZeroMax(t *testing.T) {
	src := NewListSource(randomList(23, 5))
	l := edge.NewList(0)
	if n, err := ReadEdges(src, l, 0); n != 0 || err != nil {
		t.Errorf("ReadEdges(max=0) = %d, %v; want 0, nil", n, err)
	}
	if n, err := ReadEdges(src, l, -3); n != 0 || err != nil {
		t.Errorf("ReadEdges(max=-3) = %d, %v; want 0, nil", n, err)
	}
}

// TestReadEdgesFallbackEOFAfterSome: the fallback loop must return
// (n>0, nil) when EOF lands mid-batch, then (0, io.EOF).
func TestReadEdgesFallbackEOFAfterSome(t *testing.T) {
	data := randomList(24, 7)
	src := perEdgeOnlySource{NewListSource(data)}
	l := edge.NewList(0)
	n, err := ReadEdges(src, l, 100)
	if n != 7 || err != nil {
		t.Fatalf("first batch = %d, %v; want 7, nil", n, err)
	}
	n, err = ReadEdges(src, l, 100)
	if n != 0 || err != io.EOF {
		t.Fatalf("second batch = %d, %v; want 0, io.EOF", n, err)
	}
	if !l.Equal(data) {
		t.Fatal("fallback read corrupted edges")
	}
}

// TestStripedSinkBulkMatchesPerEdge: stripe boundaries must land on the
// same edges whether the sink is fed in bulk or edge by edge.
func TestStripedSinkBulkMatchesPerEdge(t *testing.T) {
	l := randomList(25, 1013) // not divisible by the stripe count
	for _, c := range Codecs() {
		for _, nfiles := range []int{1, 3, 7} {
			bulkFS, edgeFS := vfs.NewMem(), vfs.NewMem()
			bs, err := NewStripedSink(bulkFS, "k0", c, nfiles, int64(l.Len()))
			if err != nil {
				t.Fatal(err)
			}
			// Feed in ragged batches so boundaries fall mid-batch.
			for lo := 0; lo < l.Len(); {
				hi := lo + 97
				if hi > l.Len() {
					hi = l.Len()
				}
				if err := WriteEdges(bs, l, lo, hi); err != nil {
					t.Fatal(err)
				}
				lo = hi
			}
			if err := bs.Close(); err != nil {
				t.Fatal(err)
			}
			es, err := NewStripedSink(edgeFS, "k0", c, nfiles, int64(l.Len()))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < l.Len(); i++ {
				if err := es.WriteEdge(l.U[i], l.V[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := es.Close(); err != nil {
				t.Fatal(err)
			}
			names, err := bulkFS.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != nfiles {
				t.Fatalf("%s nfiles=%d: bulk sink wrote %d files", c.Name(), nfiles, len(names))
			}
			for _, name := range names {
				a, err := bulkFS.Size(name)
				if err != nil {
					t.Fatal(err)
				}
				b, err := edgeFS.Size(name)
				if err != nil {
					t.Fatalf("%s missing from per-edge sink: %v", name, err)
				}
				if a != b {
					t.Fatalf("%s nfiles=%d: stripe %s sizes differ (bulk %d, per-edge %d)", c.Name(), nfiles, name, a, b)
				}
			}
			got, err := ReadStriped(bulkFS, "k0", c)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(l) {
				t.Fatalf("%s nfiles=%d: bulk striped round trip corrupted edges", c.Name(), nfiles)
			}
		}
	}
}

// TestBinaryReadEdgesTruncated: a torn fixed-width record is an error on
// the bulk path too, not a silent drop.
func TestBinaryReadEdgesTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := Binary{}.NewWriter(&buf)
	for i := uint64(0); i < 10; i++ {
		if err := w.WriteEdge(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	r := Binary{}.NewReader(bytes.NewReader(data))
	l := edge.NewList(0)
	var err error
	for err == nil {
		_, err = ReadEdges(r, l, 4)
	}
	if err == io.EOF {
		t.Fatal("truncated binary stream read cleanly through the bulk path")
	}
	if l.Len() != 9 {
		t.Errorf("decoded %d intact edges before the tear, want 9", l.Len())
	}
}
