package fastio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/edge"
)

// The Packed codec is a block-structured varint + delta encoding that
// exploits the sortedness the pipeline produces: kernel 1's output and the
// external sorter's spill runs are sorted by start vertex, so consecutive
// u values are near each other and delta-encode to one or two bytes where
// the fixed-width Binary codec spends eight.
//
// On-disk layout (DESIGN.md §9 is the normative spec):
//
//	file    := magic block*
//	magic   := "PRPKD1\xF5\x0A" (8 bytes; \xF5 is outside UTF-8 text,
//	           \x0A trips naive line-oriented tooling early)
//	block   := uvarint(count) uvarint(payloadLen) payload
//	payload := count × ( varint(u - uPrev)  uvarint(v) )
//
// uPrev starts at 0 in every block and updates to the decoded u after each
// edge, so blocks decode independently.  The u delta is a zigzag varint of
// the wrapping two's-complement difference, which round-trips arbitrary
// (including unsorted) uint64 sequences; sortedness only makes it small.
// count is in [1, PackedBlockEdges] and payloadLen in
// [2·count, 20·count], so a decoder's allocations stay bounded no matter
// what bytes arrive — the property the fuzz target leans on.  A zero-byte
// file is a valid empty stream; a file holding only the magic likewise.
type Packed struct{}

// packedMagic is the 8-byte file signature Detect sniffs for.
const packedMagic = "PRPKD1\xF5\x0A"

// PackedBlockEdges is the maximum (and the writer's target) number of
// edges per block.  4096 edges keep block payloads well under 100 KiB
// while amortizing the two-varint header below 0.1%.
const PackedBlockEdges = 4096

// packedMaxBytesPerEdge bounds one encoded edge: two maximal varints.
const packedMaxBytesPerEdge = 2 * binary.MaxVarintLen64

// Name implements Codec.
func (Packed) Name() string { return "packed" }

// BytesPerEdge implements Codec.  The estimate assumes the sorted input
// the pipeline feeds this codec: u deltas are small (≈2 bytes zigzag)
// while v stays uniform and costs a full-width varint.  Block headers
// amortize to under 0.1% and are ignored.
func (Packed) BytesPerEdge(maxVertex uint64) float64 {
	if maxVertex > 0 {
		maxVertex--
	}
	return 2 + float64(uvarintLen(maxVertex))
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// NewWriter implements Codec.
func (Packed) NewWriter(w io.Writer) EdgeSink {
	return &PackedWriter{w: w, payload: make([]byte, 0, PackedBlockEdges*4)}
}

// NewReader implements Codec.
func (Packed) NewReader(r io.Reader) EdgeSource {
	return &PackedReader{r: bufio.NewReaderSize(r, DefaultBufSize)}
}

// PackedWriter encodes edges into Packed blocks.  Flush seals the current
// (possibly short) block; blocks shorter than PackedBlockEdges are legal,
// so interleaving Flush with writes costs compression, never correctness.
type PackedWriter struct {
	w          io.Writer
	wroteMagic bool
	n          int    // edges in the open block
	uprev      uint64 // last u written in the open block
	payload    []byte
	hdr        []byte
}

// WriteEdge implements EdgeSink.
func (p *PackedWriter) WriteEdge(u, v uint64) error {
	p.payload = binary.AppendVarint(p.payload, int64(u-p.uprev))
	p.uprev = u
	p.payload = binary.AppendUvarint(p.payload, v)
	p.n++
	if p.n >= PackedBlockEdges {
		return p.flushBlock()
	}
	return nil
}

// WriteEdges implements BulkEdgeSink.
func (p *PackedWriter) WriteEdges(l *edge.List, lo, hi int) error {
	us, vs := l.U, l.V
	for i := lo; i < hi; i++ {
		p.payload = binary.AppendVarint(p.payload, int64(us[i]-p.uprev))
		p.uprev = us[i]
		p.payload = binary.AppendUvarint(p.payload, vs[i])
		p.n++
		if p.n >= PackedBlockEdges {
			if err := p.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush implements EdgeSink.  It writes the magic if nothing has been
// written yet, so even an empty flushed stream is detectable on disk.
func (p *PackedWriter) Flush() error { return p.flushBlock() }

func (p *PackedWriter) flushBlock() error {
	if p.wroteMagic && p.n == 0 {
		return nil
	}
	p.hdr = p.hdr[:0]
	if !p.wroteMagic {
		p.hdr = append(p.hdr, packedMagic...)
		p.wroteMagic = true
	}
	if p.n > 0 {
		p.hdr = binary.AppendUvarint(p.hdr, uint64(p.n))
		p.hdr = binary.AppendUvarint(p.hdr, uint64(len(p.payload)))
	}
	if len(p.hdr) > 0 {
		if _, err := p.w.Write(p.hdr); err != nil {
			return err
		}
	}
	if len(p.payload) > 0 {
		if _, err := p.w.Write(p.payload); err != nil {
			return err
		}
	}
	p.n, p.uprev = 0, 0
	p.payload = p.payload[:0]
	return nil
}

// PackedReader decodes Packed blocks.
type PackedReader struct {
	r       *bufio.Reader
	started bool   // magic consumed
	payload []byte // current block payload
	off     int    // decode offset into payload
	prev    uint64 // last decoded u in the current block
	rem     int    // edges remaining in the current block
}

// ReadEdge implements EdgeSource.
func (p *PackedReader) ReadEdge() (uint64, uint64, error) {
	if p.rem == 0 {
		if err := p.nextBlock(); err != nil {
			return 0, 0, err
		}
	}
	u, v, err := p.decodeOne()
	if err != nil {
		return 0, 0, err
	}
	if p.rem == 0 && p.off != len(p.payload) {
		return 0, 0, fmt.Errorf("fastio: packed: %d trailing bytes in block payload", len(p.payload)-p.off)
	}
	return u, v, nil
}

// ReadEdges implements BulkEdgeSource: whole blocks decode into l without
// per-edge interface dispatch.
func (p *PackedReader) ReadEdges(l *edge.List, max int) (int, error) {
	total := 0
	for total < max {
		if p.rem == 0 {
			if err := p.nextBlock(); err != nil {
				if err == io.EOF && total > 0 {
					return total, nil
				}
				return total, err
			}
		}
		n := p.rem
		if n > max-total {
			n = max - total
		}
		for k := 0; k < n; k++ {
			u, v, err := p.decodeOne()
			if err != nil {
				return total, err
			}
			l.Append(u, v)
			total++
		}
		if p.rem == 0 && p.off != len(p.payload) {
			return total, fmt.Errorf("fastio: packed: %d trailing bytes in block payload", len(p.payload)-p.off)
		}
	}
	return total, nil
}

// decodeOne decodes the next edge of the current block.  The caller
// guarantees p.rem > 0.
func (p *PackedReader) decodeOne() (uint64, uint64, error) {
	delta, n := binary.Varint(p.payload[p.off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("fastio: packed: corrupt u-delta varint")
	}
	p.off += n
	u := p.prev + uint64(delta) // wrapping add, inverse of the writer's wrapping subtract
	v, n2 := binary.Uvarint(p.payload[p.off:])
	if n2 <= 0 {
		return 0, 0, fmt.Errorf("fastio: packed: corrupt v varint")
	}
	p.off += n2
	p.prev = u
	p.rem--
	return u, v, nil
}

// nextBlock consumes the magic (first call) and the next block header and
// payload.  io.EOF means a clean end of stream; every other failure mode —
// short magic, wrong magic, header fields out of range, truncated payload —
// is a distinct error.
func (p *PackedReader) nextBlock() error {
	if !p.started {
		var magic [len(packedMagic)]byte
		n, err := io.ReadFull(p.r, magic[:])
		if err == io.EOF && n == 0 {
			return io.EOF // zero-byte file: valid empty stream
		}
		if err != nil {
			return fmt.Errorf("fastio: packed: short magic: %w", err)
		}
		if string(magic[:]) != packedMagic {
			return fmt.Errorf("fastio: packed: bad magic %q", magic[:])
		}
		p.started = true
	}
	count, err := binary.ReadUvarint(p.r)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("fastio: packed: block header: %w", err)
	}
	plen, err := binary.ReadUvarint(p.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("fastio: packed: block header: %w", err)
	}
	if count == 0 || count > PackedBlockEdges {
		return fmt.Errorf("fastio: packed: block edge count %d outside [1, %d]", count, PackedBlockEdges)
	}
	if plen < 2*count || plen > packedMaxBytesPerEdge*count {
		return fmt.Errorf("fastio: packed: block payload length %d outside [%d, %d] for %d edges",
			plen, 2*count, packedMaxBytesPerEdge*count, count)
	}
	if uint64(cap(p.payload)) < plen {
		p.payload = make([]byte, plen)
	}
	p.payload = p.payload[:plen]
	if _, err := io.ReadFull(p.r, p.payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("fastio: packed: truncated block payload: %w", err)
	}
	p.off, p.prev, p.rem = 0, 0, int(count)
	return nil
}

// Conformance checks.
var (
	_ Codec          = Packed{}
	_ BulkEdgeSink   = (*PackedWriter)(nil)
	_ BulkEdgeSource = (*PackedReader)(nil)
)
