package fastio

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/edge"
)

// Batched codec I/O.  The per-edge EdgeSink/EdgeSource interfaces cost one
// virtual call (and, for readers, one bounds-checked append) per edge —
// a constant factor that dominates kernels 0 and 1 once the encoding
// itself is cheap.  Codecs that can move edges in bulk implement the
// optional interfaces below; the package-level WriteEdges/ReadEdges
// adapters fall back to the per-edge loop for codecs that cannot, so
// every call site gets the fast path where one exists and stays correct
// where it does not.

// readChunkEdges is the batch size used by the streaming read loops: large
// enough to amortize the per-call overhead, small enough that scratch
// buffers stay cache- and allocation-friendly.
const readChunkEdges = 16 << 10

// BulkEdgeSink is the batched write path of an EdgeSink.  WriteEdges
// appends edges l[lo:hi) to the stream in one call; the range must be
// valid (callers go through the package-level WriteEdges, which checks).
type BulkEdgeSink interface {
	EdgeSink
	WriteEdges(l *edge.List, lo, hi int) error
}

// BulkEdgeSource is the batched read path of an EdgeSource.  ReadEdges
// appends up to max edges to l and returns the number appended.  A short
// count with a nil error is legal (a block or stripe boundary, say);
// (0, io.EOF) means end of stream, and the call repeats io.EOF thereafter.
type BulkEdgeSource interface {
	EdgeSource
	ReadEdges(l *edge.List, max int) (int, error)
}

// WriteEdges writes edges l[lo:hi) to s, through one batched call when s
// implements BulkEdgeSink and edge by edge otherwise.
func WriteEdges(s EdgeSink, l *edge.List, lo, hi int) error {
	if lo < 0 || hi > l.Len() || lo > hi {
		return fmt.Errorf("fastio: WriteEdges range [%d:%d) out of bounds for %d edges", lo, hi, l.Len())
	}
	if b, ok := s.(BulkEdgeSink); ok {
		return b.WriteEdges(l, lo, hi)
	}
	us, vs := l.U, l.V
	for i := lo; i < hi; i++ {
		if err := s.WriteEdge(us[i], vs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEdges appends up to max edges from s to l, returning the number
// appended.  It follows the BulkEdgeSource contract: a short count with a
// nil error is legal, and (0, io.EOF) marks end of stream — so callers
// loop until io.EOF rather than until a short read.
func ReadEdges(s EdgeSource, l *edge.List, max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	if b, ok := s.(BulkEdgeSource); ok {
		return b.ReadEdges(l, max)
	}
	n := 0
	for n < max {
		u, v, err := s.ReadEdge()
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			return n, err
		}
		l.Append(u, v)
		n++
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Native bulk implementations

// WriteEdges implements BulkEdgeSink: the per-edge formatting loop runs
// without interface dispatch between edges.
func (t *TSVWriter) WriteEdges(l *edge.List, lo, hi int) error {
	us, vs := l.U, l.V
	for i := lo; i < hi; i++ {
		t.buf = AppendUint(t.buf, us[i])
		t.buf = append(t.buf, '\t')
		t.buf = AppendUint(t.buf, vs[i])
		t.buf = append(t.buf, '\n')
		if len(t.buf) >= t.max-42 {
			if err := t.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadEdges implements BulkEdgeSource.
func (t *TSVReader) ReadEdges(l *edge.List, max int) (int, error) {
	n := 0
	for n < max {
		t.line++
		u, err := t.readField('\t')
		if err != nil {
			if err == io.EOF {
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			return n, fmt.Errorf("fastio: line %d: %w", t.line, err)
		}
		v, err := t.readField('\n')
		if err != nil && err != io.EOF {
			return n, fmt.Errorf("fastio: line %d: %w", t.line, err)
		}
		l.Append(u, v)
		n++
	}
	return n, nil
}

// WriteEdges implements BulkEdgeSink.
func (b *binWriter) WriteEdges(l *edge.List, lo, hi int) error {
	us, vs := l.U, l.V
	for i := lo; i < hi; i++ {
		b.buf = binary.LittleEndian.AppendUint64(b.buf, us[i])
		b.buf = binary.LittleEndian.AppendUint64(b.buf, vs[i])
		if len(b.buf) >= cap(b.buf)-16 {
			if err := b.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadEdges implements BulkEdgeSource: whole record batches move through
// one io.ReadFull per chunk instead of one per edge.
func (b *binReader) ReadEdges(l *edge.List, max int) (int, error) {
	const chunk = 4096 // records per ReadFull
	if b.blk == nil {
		b.blk = make([]byte, chunk*16)
	}
	total := 0
	for total < max {
		want := max - total
		if want > chunk {
			want = chunk
		}
		buf := b.blk[:want*16]
		got, err := io.ReadFull(b.r, buf)
		full := got / 16
		for i := 0; i < full; i++ {
			l.Append(binary.LittleEndian.Uint64(buf[i*16:]), binary.LittleEndian.Uint64(buf[i*16+8:]))
		}
		total += full
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if got%16 != 0 {
				return total, fmt.Errorf("fastio: truncated binary edge record: %w", io.ErrUnexpectedEOF)
			}
			if total == 0 {
				return 0, io.EOF
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadEdges implements BulkEdgeSource, delegating to the current stripe's
// bulk path and rolling to the next stripe at each boundary.
func (s *StripedSource) ReadEdges(l *edge.List, max int) (int, error) {
	for {
		if s.src == nil {
			if s.next >= len(s.names) {
				return 0, io.EOF
			}
			r, err := s.fs.Open(s.names[s.next])
			if err != nil {
				return 0, err
			}
			s.cur = r
			s.src = s.codec.NewReader(r)
			s.next++
		}
		n, err := ReadEdges(s.src, l, max)
		if err == io.EOF {
			s.cur.Close()
			s.cur, s.src = nil, nil
			continue
		}
		return n, err
	}
}

// ReadEdges implements BulkEdgeSource: one slice copy per call.
func (s *ListSource) ReadEdges(l *edge.List, max int) (int, error) {
	rem := s.l.Len() - s.i
	if rem == 0 {
		return 0, io.EOF
	}
	if max > rem {
		max = rem
	}
	l.U = append(l.U, s.l.U[s.i:s.i+max]...)
	l.V = append(l.V, s.l.V[s.i:s.i+max]...)
	s.i += max
	return max, nil
}

// WriteEdges implements BulkEdgeSink: one slice copy per call.
func (s *ListSink) WriteEdges(l *edge.List, lo, hi int) error {
	s.L.U = append(s.L.U, l.U[lo:hi]...)
	s.L.V = append(s.L.V, l.V[lo:hi]...)
	return nil
}

// Conformance checks for the native bulk paths.
var (
	_ BulkEdgeSink   = (*TSVWriter)(nil)
	_ BulkEdgeSource = (*TSVReader)(nil)
	_ BulkEdgeSink   = (*binWriter)(nil)
	_ BulkEdgeSource = (*binReader)(nil)
	_ BulkEdgeSource = (*StripedSource)(nil)
	_ BulkEdgeSource = (*ListSource)(nil)
	_ BulkEdgeSink   = (*ListSink)(nil)
)
