package fastio

import (
	"fmt"
	"io"

	"repro/internal/edge"
	"repro/internal/vfs"
)

// StripedSink is an EdgeSink that distributes an edge stream across a fixed
// number of stripe files without knowing the total edge count in advance —
// the out-of-core counterpart of WriteStriped.  Edges are written to stripe
// i until edgesPerStripe records accumulate, then the sink rolls to stripe
// i+1; the final stripe absorbs any overflow.  Close flushes and closes the
// current stripe.
type StripedSink struct {
	fs             vfs.FS
	prefix         string
	codec          Codec
	nfiles         int
	edgesPerStripe int64

	stripe  int
	written int64
	cur     io.WriteCloser
	sink    EdgeSink
}

// NewStripedSink returns a StripedSink writing nfiles stripes under prefix.
// expectedEdges sizes the per-stripe quota; if the stream turns out longer,
// the last stripe grows (stripe count never exceeds nfiles).
func NewStripedSink(fs vfs.FS, prefix string, codec Codec, nfiles int, expectedEdges int64) (*StripedSink, error) {
	if nfiles < 1 {
		return nil, fmt.Errorf("fastio: nfiles = %d, want >= 1", nfiles)
	}
	per := expectedEdges / int64(nfiles)
	if per < 1 {
		per = 1
	}
	return &StripedSink{fs: fs, prefix: prefix, codec: codec, nfiles: nfiles, edgesPerStripe: per}, nil
}

// WriteEdge implements EdgeSink.
func (s *StripedSink) WriteEdge(u, v uint64) error {
	if s.sink == nil {
		if err := s.openNext(); err != nil {
			return err
		}
	}
	if err := s.sink.WriteEdge(u, v); err != nil {
		return err
	}
	s.written++
	if s.written >= s.edgesPerStripe && s.stripe < s.nfiles {
		return s.closeCurrent()
	}
	return nil
}

// WriteEdges implements BulkEdgeSink, carving the batch along the same
// stripe boundaries the per-edge path would produce and forwarding each
// piece through the inner codec's bulk path.
func (s *StripedSink) WriteEdges(l *edge.List, lo, hi int) error {
	for lo < hi {
		if s.sink == nil {
			if err := s.openNext(); err != nil {
				return err
			}
		}
		n := hi - lo
		if s.stripe < s.nfiles { // later stripes remain: honor this stripe's quota
			if room := s.edgesPerStripe - s.written; int64(n) > room {
				n = int(room)
			}
		}
		if err := WriteEdges(s.sink, l, lo, lo+n); err != nil {
			return err
		}
		s.written += int64(n)
		lo += n
		if s.written >= s.edgesPerStripe && s.stripe < s.nfiles {
			if err := s.closeCurrent(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *StripedSink) openNext() error {
	w, err := s.fs.Create(StripeName(s.prefix, s.codec, s.stripe))
	if err != nil {
		return err
	}
	s.cur = w
	s.sink = s.codec.NewWriter(w)
	s.stripe++
	s.written = 0
	return nil
}

func (s *StripedSink) closeCurrent() error {
	if s.sink == nil {
		return nil
	}
	if err := s.sink.Flush(); err != nil {
		s.cur.Close()
		return err
	}
	err := s.cur.Close()
	s.cur, s.sink = nil, nil
	return err
}

// Flush implements EdgeSink; it flushes the current stripe's buffer but
// keeps the stripe open for further edges.
func (s *StripedSink) Flush() error {
	if s.sink == nil {
		return nil
	}
	return s.sink.Flush()
}

// Close finishes the sink, closing any open stripe.  A sink that received
// no edges at all still produces one empty stripe so readers find the
// prefix.
func (s *StripedSink) Close() error {
	if s.sink == nil && s.stripe == 0 {
		if err := s.openNext(); err != nil {
			return err
		}
	}
	return s.closeCurrent()
}
