package fastio

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/vfs"
)

// Codec resolution: by name (CLI flags, pipeline.Config.Format), by file
// extension, and by on-disk content (CLIs pointed at a pre-existing
// directory must not guess).

// Codecs returns one instance of every codec, in registry order.
func Codecs() []Codec { return []Codec{TSV{}, NaiveTSV{}, Binary{}, Packed{}} }

// CodecNames returns the registered codec names, in registry order.
func CodecNames() []string {
	cs := Codecs()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name()
	}
	return names
}

// CodecByName resolves a codec name as spelled in flags, Config.Format,
// and file extensions.
func CodecByName(name string) (Codec, error) {
	for _, c := range Codecs() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("fastio: unknown codec %q (have %s)", name, strings.Join(CodecNames(), ", "))
}

// codecByExt resolves a codec from name's file extension, if recognized.
func codecByExt(name string) (Codec, bool) {
	for _, c := range Codecs() {
		if strings.HasSuffix(name, "."+c.Name()) {
			return c, true
		}
	}
	return nil, false
}

// Detect identifies the codec that encoded the file.  A recognized
// extension decides directly — stripe files always carry one — otherwise
// the content is sniffed: the Packed magic wins, a leading decimal digit
// means the tab-separated text format, and anything else is the
// fixed-width binary record.  An extensionless empty file is undetectable
// and returns an error.
func Detect(fs vfs.FS, name string) (Codec, error) {
	if c, ok := codecByExt(name); ok {
		return c, nil
	}
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var head [len(packedMagic)]byte
	n, err := io.ReadFull(r, head[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	b := head[:n]
	switch {
	case string(b) == packedMagic:
		return Packed{}, nil
	case n > 0 && b[0] >= '0' && b[0] <= '9':
		return TSV{}, nil
	case n == 0:
		return nil, fmt.Errorf("fastio: cannot detect codec of empty file %q without a recognized extension", name)
	default:
		return Binary{}, nil
	}
}

// DetectStriped resolves the codec of an existing striped prefix by
// probing StripeName(prefix, c, 0) for every registered codec — the
// extension is part of the stripe name, so presence is unambiguous.
func DetectStriped(fs vfs.FS, prefix string) (Codec, error) {
	for _, c := range Codecs() {
		if _, err := fs.Size(StripeName(prefix, c, 0)); err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("fastio: no stripes found for prefix %q in any known format (%s)",
		prefix, strings.Join(CodecNames(), ", "))
}
