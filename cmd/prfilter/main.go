// Command prfilter runs kernel 2 standalone: it reads the kernel-1 sorted
// edge files, constructs the sparse adjacency matrix, eliminates super-node
// and leaf columns, normalizes rows by out-degree, and reports edges
// prepared per second.
//
//	prfilter -scale 18 -dir /tmp/prdata
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fastio"
	"repro/internal/vfs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "Graph500 scale factor (must match prgen)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (must match prgen)")
		dir        = flag.String("dir", "prdata", "data directory holding kernel-1 files")
		variant    = flag.String("variant", "csr", "implementation variant")
		format     = flag.String("format", "", "edge-file format: tsv, naivetsv, bin, packed (default: detect from k1 files)")
	)
	flag.Parse()
	fsys, err := vfs.NewDir(*dir)
	if err != nil {
		fatal(err)
	}
	codec, err := fastio.DetectStriped(fsys, "k1")
	if err != nil {
		fatal(fmt.Errorf("detecting k1 format: %w", err))
	}
	if *format != "" && *format != codec.Name() {
		fatal(fmt.Errorf("k1 files in %s are %q but -format says %q", *dir, codec.Name(), *format))
	}
	cfg := core.Config{Scale: *scale, EdgeFactor: *edgeFactor, FS: fsys, Variant: *variant, Format: codec.Name()}
	res, err := core.RunOnce(context.Background(), cfg, core.K2Filter)
	if err != nil {
		fatal(err)
	}
	k := res.Kernels[0]
	fmt.Printf("kernel 2: prepared %d edges in %.3fs (%.4g edges/s)\n", k.Edges, k.Seconds, k.EdgesPerSecond)
	fmt.Printf("matrix: %d nonzeros after filtering; mass before filtering %.0f\n", res.NNZ, res.MatrixMass)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prfilter:", err)
	os.Exit(1)
}
