// Command prlint is the repo's multichecker: it runs the custom
// analyzers from internal/analysis (envelope, meteredcomm, determinism,
// ctxfirst — see DESIGN.md §11) over the module and exits non-zero if
// any documented contract is violated.
//
// Usage:
//
//	prlint [-tests=false] [-checks envelope,ctxfirst] [-json] [packages]
//
// Packages default to ./... and accept the same ./dir and ./dir/...
// forms as the go tool, resolved against the enclosing module.
// Diagnostics print as file:line:col: message [analyzer]; -json emits a
// machine-readable array for CI artifacts.  Exit status: 0 clean, 1
// findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
	"repro/internal/analysis/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	tests := flag.Bool("tests", true, "also analyze _test.go files and external test packages")
	checkList := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checkList != "" {
		var ok bool
		analyzers, ok = checks.Select(strings.Split(*checkList, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "prlint: unknown analyzer in -checks=%s (try -list)\n", *checkList)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prlint:", err)
		return 2
	}
	diags, lerr := Lint(cwd, flag.Args(), analyzers, *tests)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "prlint:", lerr)
		return 2
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, d)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "prlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Lint loads the patterns relative to the module enclosing dir and runs
// the analyzers, returning resolved diagnostics.
func Lint(dir string, patterns []string, analyzers []*analysis.Analyzer, tests bool) ([]jsonDiag, error) {
	root, modPath, err := load.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	l := load.New(load.Config{Tests: tests, ModRoot: root, ModPath: modPath})
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var pkgs []*load.Package
	for _, pat := range patterns {
		paths, err := l.Expand(pat)
		if err != nil {
			return nil, err
		}
		for _, path := range paths {
			if seen[path] {
				continue
			}
			seen[path] = true
			got, err := l.Load(path)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, got...)
		}
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		file := pos.Filename
		if rel, rerr := relPath(root, file); rerr == nil {
			file = rel
		}
		out = append(out, jsonDiag{File: file, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message})
	}
	return out, nil
}

func relPath(root, file string) (string, error) {
	if !strings.HasPrefix(file, root) {
		return file, nil
	}
	return strings.TrimPrefix(strings.TrimPrefix(file, root), string(os.PathSeparator)), nil
}
