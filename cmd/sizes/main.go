// Command sizes prints the paper's Table II ("Benchmark run sizes"):
// maximum vertices, maximum edges and approximate memory footprint for a
// range of scale factors.
//
//	sizes -min 16 -max 22
package main

import (
	"flag"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/results"
)

func main() {
	var (
		min        = flag.Int("min", 16, "smallest scale")
		max        = flag.Int("max", 22, "largest scale")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		bytes      = flag.Int("bytes", 0, "bytes per edge (0 = the value reproducing the published table)")
		format     = flag.String("format", "table", "output format: table, csv, markdown")
	)
	flag.Parse()
	var scales []int
	for s := *min; s <= *max; s++ {
		scales = append(scales, s)
	}
	rows := pipeline.SizeTable(scales, *edgeFactor, *bytes)
	t := results.NewTable("Table II. Benchmark run sizes", "Scale", "Max Vertices", "Max Edges", "~Memory")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Scale),
			pipeline.HumanCount(r.MaxVertices),
			pipeline.HumanCount(r.MaxEdges),
			pipeline.HumanBytes(r.MemoryBytes),
		)
	}
	switch *format {
	case "csv":
		fmt.Print(t.CSV())
	case "markdown":
		fmt.Print(t.Markdown())
	default:
		fmt.Print(t.Plain())
	}
}
