// Command prrankd is a rank worker for the socket execution mode.  It
// joins a coordinator's fabric, receives its rank and job over the
// control link, exchanges messages with the other workers over a full
// rank-to-rank socket mesh, and reports its outcome back to the
// coordinator before exiting.
//
// A coordinator is any process that runs the distributed kernels with
// dist.SocketSpec.External set: it listens on a well-known address and
// admits exactly p workers that present the expected fabric id.  Start
// the workers by hand (or from a launcher) with:
//
//	prrankd -join /tmp/prfabric/coord.sock -fabric 4f1d…
//	prrankd -network tcp -join 127.0.0.1:7946 -fabric 4f1d…
//
// The process exits 0 after a clean run and 1 when the join or the run
// fails — including a rejection by the fabric (wrong fabric id or a
// full fabric).  Workers spawned by the coordinator itself (the
// default, non-External socket mode) use the PRRANKD_JOIN/PRRANKD_FABRIC
// environment instead of flags; any binary that imports the dist
// package honours that environment, including this one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
)

func main() {
	var (
		network = flag.String("network", "unix", "coordinator socket family: unix or tcp")
		join    = flag.String("join", "", "coordinator address to join (unix socket path or host:port)")
		fabric  = flag.String("fabric", "", "fabric id the coordinator expects (hex string)")
	)
	flag.Parse()
	if *join == "" {
		fatal(fmt.Errorf("-join is required: the coordinator's listen address"))
	}
	if *fabric == "" {
		fatal(fmt.Errorf("-fabric is required: the id printed by the coordinator"))
	}
	if err := dist.JoinFabric(context.Background(), *network, *join, *fabric); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prrankd:", err)
	os.Exit(1)
}
