// Command prbench runs the PageRank pipeline benchmark.
//
// Single run (all four kernels, in-memory storage):
//
//	prbench -scale 18 -variant csr
//
// Reproduce the paper's figures (edges/second vs. number of edges for every
// implementation variant, kernels 0-3):
//
//	prbench -sweep -minscale 16 -maxscale 20
//
// Distributed run with communication accounting — simulated (default),
// real goroutine ranks, or both cross-checked against each other:
//
//	prbench -scale 16 -procs 8
//	prbench -scale 16 -procs 8 -distmode goroutine
//	prbench -scale 16 -procs 8 -distmode both
//
// Out-of-core distributed kernel 1 (-runedges bounds each rank's run
// buffer; it composes with -distmode, and with -variant distext|extsort
// for pipeline runs):
//
//	prbench -scale 16 -procs 8 -runedges 65536
//	prbench -scale 16 -procs 8 -runedges 65536 -distmode both
//	prbench -scale 16 -variant distext -runedges 65536
//
// Wall-clock scaling of the goroutine-rank runtime across processor
// counts, with the hardware model's predicted speedup alongside;
// -rankworkers crosses in the hybrid intra-rank worker counts for a
// p×w table (results are bit-for-bit invariant in both axes):
//
//	prbench -scale 16 -procsweep 1,2,4,8
//	prbench -scale 16 -procsweep 1,2,4 -rankworkers 1,2,4
//
// Edge-file formats: -format selects the on-disk codec for the kernel
// files (tsv is the paper-faithful default), and -formatsweep tabulates
// kernel-1 edges/second per format — the Figure-7-style ablation showing
// the sort going hardware-bound once text parsing leaves the loop:
//
//	prbench -scale 16 -variant extsort -format bin
//	prbench -scale 16 -variant extsort -runedges 65536 -formatsweep
//
// Checkpoint/restart of the distributed kernel 3 (-checkpoint-every
// writes an epoch to storage every N iterations), with an optional
// injected rank failure: kill a rank mid-run, resume from the newest
// complete epoch, and cross-check the final ranks bit for bit against
// the uninterrupted baseline (DESIGN.md §10).  "RANK@ITER@ckpt" moves
// the kill between the chunk write and the commit, manufacturing the
// torn epoch the loader must skip:
//
//	prbench -scale 14 -variant distgo -checkpoint-every 3
//	prbench -scale 14 -variant distgo -checkpoint-every 3 -inject-fault 1@7
//	prbench -scale 14 -variant distgo -checkpoint-every 3 -inject-fault 1@6@ckpt
//
// Staged-artifact-cache ablation: -cachesweep runs every variant cold
// then warm against a fresh service and tabulates the wall-clock
// speedup next to the warm run's per-stage hit/miss counters and the
// cache's resident footprint; -cachebudget bounds the cache in bytes:
//
//	prbench -scale 16 -cachesweep
//	prbench -scale 16 -cachesweep -variant csr,dist -cachebudget 268435456
//
// Machine-readable output for the perf trajectory (single pipeline runs
// and -cachesweep; schema documented in the README, archived as
// BENCH_*.json by CI):
//
//	prbench -scale 14 -variant distgo -rankworkers 4 -json
//	prbench -scale 16 -cachesweep -json
//
// Hardware-model predictions for the paper's platform:
//
//	prbench -scale 22 -predict
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/results"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

func main() {
	var (
		scale       = flag.Int("scale", 16, "Graph500 scale factor S (N = 2^S)")
		edgeFactor  = flag.Int("edgefactor", 16, "average edges per vertex k")
		seed        = flag.Uint64("seed", 1, "random seed")
		nfiles      = flag.Int("nfiles", 1, "number of edge files (the paper's free parameter)")
		variant     = flag.String("variant", "csr", "implementation variant, or 'all'")
		generator   = flag.String("generator", "kronecker", "kernel-0 generator: kronecker, ppl, er")
		workers     = flag.Int("workers", 0, "worker goroutines for parallel variants (0 = GOMAXPROCS)")
		dir         = flag.String("dir", "", "storage directory (empty = in-memory)")
		iterations  = flag.Int("iterations", 20, "kernel-3 PageRank iterations")
		damping     = flag.Float64("damping", 0.85, "kernel-3 damping factor c")
		dangling    = flag.Bool("dangling", false, "apply the dangling-node correction in kernel 3")
		sortEnds    = flag.Bool("sortends", false, "kernel 1 sorts by (u,v) instead of u")
		kernels     = flag.String("kernels", "0123", "kernels to run, e.g. 01 or 23")
		sweep       = flag.Bool("sweep", false, "sweep scales and emit the paper's figures 4-7")
		minScale    = flag.Int("minscale", 16, "sweep: smallest scale")
		maxScale    = flag.Int("maxscale", 18, "sweep: largest scale")
		procs       = flag.Int("procs", 0, "run the distributed pipeline on this many processors (ranks)")
		runEdges    = flag.Int("runedges", 0, "out-of-core run-buffer size in edges (extsort/distext variants; with -procs runs the out-of-core distributed sort)")
		distMode    = flag.String("distmode", "", "distributed execution: sim, goroutine or socket (empty = variant default); with -procs also 'both' (sim vs goroutine) or 'all' (every mode) to cross-check")
		procSweep   = flag.String("procsweep", "", "comma-separated rank counts for a goroutine-mode wall-clock scaling table")
		rankWorkers = flag.String("rankworkers", "1", "hybrid intra-rank worker goroutines per rank; a comma list crosses with -procsweep into a p×w table")
		predict     = flag.Bool("predict", false, "print hardware-model predictions and exit")
		format      = flag.String("format", "", "edge-file format: tsv, naivetsv, bin, packed (default: variant's)")
		formatSweep = flag.Bool("formatsweep", false, "run the kernel-1 edge-file format ablation (K1 edges/s per format) and exit")
		ckptEvery   = flag.Int("checkpoint-every", 0, "checkpoint the distributed kernel 3 every N iterations and report the overhead against an uncheckpointed baseline (dist variants)")
		ckptDir     = flag.String("checkpoint-dir", "", "durable storage directory for -checkpoint-every epochs (empty = in-memory)")
		injectFault = flag.String("inject-fault", "", `kill a rank mid-kernel-3 and resume: "RANK@ITER" fires after ITER completed iterations, "RANK@ITER@ckpt" fires during the epoch write (requires -checkpoint-every)`)
		cacheSweep  = flag.Bool("cachesweep", false, "run each variant cold then warm against the staged artifact cache and tabulate the speedup, per-stage hit/miss counters and resident cache bytes")
		cacheBudget = flag.Int64("cachebudget", 0, "staged-cache byte budget (0 = the default entry-capped cache); applies to single runs and -cachesweep")
		output      = flag.String("output", "table", "output format: table, csv, markdown")
		jsonOut     = flag.Bool("json", false, "emit a machine-readable prbench/v3 JSON report (single pipeline runs and -cachesweep; schema in README)")
		ascii       = flag.Bool("ascii", true, "sweep: also draw ASCII log-log plots")
	)
	flag.Parse()

	// One long-lived Service backs every mode of the command: runs are
	// admitted through it, Ctrl-C cancels them mid-kernel through ctx,
	// and the sweeps share its generator cache so a graph is generated
	// once per sweep, not once per table cell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var svcOpts []core.ServiceOption
	if *cacheBudget > 0 {
		svcOpts = append(svcOpts, core.WithCacheBudget(*cacheBudget))
	}
	svc := core.NewService(svcOpts...)
	defer svc.Close()

	rw, err := parseIntList(*rankWorkers)
	if err != nil {
		fatal(fmt.Errorf("bad -rankworkers: %w", err))
	}
	if *jsonOut && (*predict || *procSweep != "" || *procs > 0) {
		fatal(fmt.Errorf("-json reports single pipeline runs; drop -predict/-procsweep/-procs"))
	}
	if *injectFault != "" && *ckptEvery <= 0 {
		fatal(fmt.Errorf("-inject-fault needs -checkpoint-every: without epochs there is nothing to resume from"))
	}
	if *ckptEvery > 0 && (*sweep || *formatSweep || *procSweep != "" || *procs > 0 || *predict || *jsonOut) {
		fatal(fmt.Errorf("-checkpoint-every reports single pipeline runs; drop -sweep/-formatsweep/-procsweep/-procs/-predict/-json"))
	}
	if *predict {
		printPredictions(*scale, *output)
		return
	}
	if *cacheSweep {
		if *sweep || *formatSweep || *procSweep != "" || *procs > 0 || *ckptEvery > 0 {
			fatal(fmt.Errorf("-cachesweep is its own mode; drop -sweep/-formatsweep/-procsweep/-procs/-checkpoint-every"))
		}
		// A bare -cachesweep ablates every variant; an explicit -variant
		// (other than "all") narrows it to a comma list.
		variants := core.Variants()
		variantSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "variant" {
				variantSet = true
			}
		})
		if variantSet && *variant != "all" {
			variants = strings.Split(*variant, ",")
		}
		if err := runCacheSweep(ctx, *scale, *edgeFactor, *seed, *nfiles, variants, *cacheBudget, *workers, *iterations, *damping, *dangling, *output, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if *formatSweep {
		if err := runFormatSweep(ctx, svc, *scale, *edgeFactor, *seed, *nfiles, *variant, *runEdges, *iterations, *damping, *dangling, *output); err != nil {
			fatal(err)
		}
		return
	}
	if *procSweep != "" {
		if err := runProcSweep(ctx, svc, *scale, *edgeFactor, *seed, *procSweep, rw, *iterations, *damping, *dangling, *output); err != nil {
			fatal(err)
		}
		return
	}
	if len(rw) != 1 {
		fatal(fmt.Errorf("-rankworkers accepts a list only with -procsweep"))
	}
	if *procs > 0 {
		if err := runDistributed(ctx, svc, *scale, *edgeFactor, *seed, *procs, rw[0], *iterations, *damping, *dangling, *distMode, *runEdges); err != nil {
			fatal(err)
		}
		return
	}
	if *distMode == "both" || *distMode == "all" {
		// "both"/"all" are the cross-check spellings of the direct -procs
		// runner; a pipeline run executes one variant in one mode.
		fatal(fmt.Errorf("-distmode %s requires -procs; use -distmode sim, goroutine or socket with -variant", *distMode))
	}
	if *sweep {
		if *jsonOut {
			fatal(fmt.Errorf("-json reports single pipeline runs; drop -sweep"))
		}
		if err := runSweep(ctx, *minScale, *maxScale, *edgeFactor, *seed, *variant, *output, *ascii); err != nil {
			fatal(err)
		}
		return
	}

	cfg := core.Config{
		Scale:           *scale,
		EdgeFactor:      *edgeFactor,
		Seed:            *seed,
		NFiles:          *nfiles,
		Variant:         *variant,
		Generator:       pipeline.GeneratorKind(*generator),
		Format:          *format,
		Workers:         *workers,
		RunEdges:        *runEdges,
		SortEndVertices: *sortEnds,
		DistMode:        *distMode,
		RankWorkers:     rw[0],
		PageRank: pagerank.Options{
			Iterations: *iterations,
			Damping:    *damping,
			Dangling:   *dangling,
		},
	}
	if *dir != "" {
		fsys, err := vfs.NewDir(*dir)
		if err != nil {
			fatal(err)
		}
		cfg.FS = fsys
	}
	if *ckptEvery > 0 {
		if err := runCheckpointed(ctx, svc, cfg, *ckptEvery, *injectFault, *ckptDir); err != nil {
			fatal(err)
		}
		return
	}
	ks, err := parseKernels(*kernels)
	if err != nil {
		fatal(err)
	}
	res, err := svc.Run(ctx, cfg, core.WithKernels(ks...))
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := printResultJSON(res, *cacheBudget); err != nil {
			fatal(err)
		}
		return
	}
	printResult(res, *output)
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad entry %q (want positive integers)", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prbench:", err)
	os.Exit(1)
}

func parseKernels(s string) ([]core.Kernel, error) {
	var ks []core.Kernel
	for _, c := range s {
		switch c {
		case '0':
			ks = append(ks, core.K0Generate)
		case '1':
			ks = append(ks, core.K1Sort)
		case '2':
			ks = append(ks, core.K2Filter)
		case '3':
			ks = append(ks, core.K3PageRank)
		default:
			return nil, fmt.Errorf("bad kernel %q in -kernels", string(c))
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("-kernels selected nothing")
	}
	return ks, nil
}

func emit(t *results.Table, format string) {
	switch format {
	case "csv":
		fmt.Print(t.CSV())
	case "markdown":
		fmt.Print(t.Markdown())
	default:
		fmt.Print(t.Plain())
	}
}

// The prbench/v3 JSON schema (documented in the README): one object per
// pipeline run, the per-kernel rows of the table plus the allocation and
// communication counters that seed the BENCH_*.json perf trajectory.
// v2 added the edge-file format, the encoded kernel-0/kernel-1 file
// footprints, and the out-of-core spill record.  v3 adds the staged
// artifact cache: the run's per-stage hit/miss record, the configured
// byte budget, and the -cachesweep report (a second object shape under
// the same schema string, distinguished by its "cacheSweep" array).
type jsonKernel struct {
	Kernel         string  `json:"kernel"`
	Seconds        float64 `json:"seconds"`
	Edges          uint64  `json:"edges"`
	EdgesPerSecond float64 `json:"edgesPerSecond"`
	Allocs         uint64  `json:"allocs"`
}

type jsonComm struct {
	AllToAllBytes  uint64 `json:"allToAllBytes"`
	AllReduceCalls uint64 `json:"allReduceCalls"`
	AllReduceBytes uint64 `json:"allReduceBytes"`
	BroadcastCalls uint64 `json:"broadcastCalls"`
	BroadcastBytes uint64 `json:"broadcastBytes"`
	TotalBytes     uint64 `json:"totalBytes"`
}

type jsonSpill struct {
	Codec        string `json:"codec"`
	Runs         int    `json:"runs"`
	BytesWritten int64  `json:"bytesWritten"`
	BytesRead    int64  `json:"bytesRead"`
}

type jsonCacheStage struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// jsonCacheStats is a run's per-stage staged-cache record.  A hit at a
// deeper stage short-circuits the shallower ones, so a warm run shows a
// matrix hit and zeros elsewhere.
type jsonCacheStats struct {
	Edges  jsonCacheStage `json:"edges"`
	Sorted jsonCacheStage `json:"sorted"`
	Matrix jsonCacheStage `json:"matrix"`
}

func newJSONCacheStats(c *core.CacheStats) *jsonCacheStats {
	if c == nil {
		return nil
	}
	return &jsonCacheStats{
		Edges:  jsonCacheStage{Hits: c.Edges.Hits, Misses: c.Edges.Misses},
		Sorted: jsonCacheStage{Hits: c.Sorted.Hits, Misses: c.Sorted.Misses},
		Matrix: jsonCacheStage{Hits: c.Matrix.Hits, Misses: c.Matrix.Misses},
	}
}

type jsonReport struct {
	Schema       string           `json:"schema"`
	Scale        int              `json:"scale"`
	EdgeFactor   int              `json:"edgeFactor"`
	Seed         uint64           `json:"seed"`
	Variant      string           `json:"variant"`
	Generator    string           `json:"generator"`
	Format       string           `json:"format"`
	Workers      int              `json:"workers"`
	RankWorkers  int              `json:"rankWorkers"`
	DistMode     string           `json:"distMode"`
	RunEdges     int              `json:"runEdges,omitempty"`
	N            uint64           `json:"n"`
	M            uint64           `json:"m"`
	Kernels      []jsonKernel     `json:"kernels"`
	EncodedBytes map[string]int64 `json:"encodedBytes,omitempty"`
	NNZ          int              `json:"nnz,omitempty"`
	MatrixMass   float64          `json:"matrixMass,omitempty"`
	Iterations   int              `json:"iterations,omitempty"`
	Comm         *jsonComm        `json:"comm,omitempty"`
	Spill        *jsonSpill       `json:"spill,omitempty"`
	Cache        *jsonCacheStats  `json:"cache,omitempty"`
	CacheBudget  int64            `json:"cacheBudgetBytes,omitempty"`
}

// printResultJSON emits the prbench/v3 report for one pipeline run.
func printResultJSON(res *core.Result, cacheBudget int64) error {
	rep := jsonReport{
		Schema:      "prbench/v3",
		Scale:       res.Config.Scale,
		EdgeFactor:  res.Config.EdgeFactor,
		Seed:        res.Config.Seed,
		Variant:     res.Config.Variant,
		Generator:   string(res.Config.Generator),
		Format:      pipeline.FormatName(res.Config),
		Workers:     res.Config.Workers,
		RankWorkers: res.Config.RankWorkers,
		DistMode:    res.Config.DistMode,
		RunEdges:    res.Config.RunEdges,
		N:           res.Config.N(),
		M:           res.Config.M(),
		NNZ:         res.NNZ,
		MatrixMass:  res.MatrixMass,
		Iterations:  res.RankIterations,
		Cache:       newJSONCacheStats(res.Cache),
		CacheBudget: cacheBudget,
	}
	// The encoded footprint of the surviving edge files: measured from
	// the run's FS, absent for any stage whose files were not produced.
	if res.Config.FS != nil {
		if codec, err := fastio.CodecByName(rep.Format); err == nil {
			for _, prefix := range []string{"k0", "k1"} {
				if n, err := fastio.StripedBytes(res.Config.FS, prefix, codec); err == nil {
					if rep.EncodedBytes == nil {
						rep.EncodedBytes = map[string]int64{}
					}
					rep.EncodedBytes[prefix] = n
				}
			}
		}
	}
	if res.Spill != nil {
		rep.Spill = &jsonSpill{
			Codec:        res.Spill.Codec,
			Runs:         res.Spill.Runs,
			BytesWritten: res.Spill.BytesWritten,
			BytesRead:    res.Spill.BytesRead,
		}
	}
	for _, k := range res.Kernels {
		rep.Kernels = append(rep.Kernels, jsonKernel{
			Kernel:         k.Kernel.String(),
			Seconds:        k.Seconds,
			Edges:          k.Edges,
			EdgesPerSecond: k.EdgesPerSecond,
			Allocs:         k.Allocs,
		})
	}
	if res.Comm != nil {
		rep.Comm = &jsonComm{
			AllToAllBytes:  res.Comm.AllToAllBytes,
			AllReduceCalls: res.Comm.AllReduceCalls,
			AllReduceBytes: res.Comm.AllReduceBytes,
			BroadcastCalls: res.Comm.BroadcastCalls,
			BroadcastBytes: res.Comm.BroadcastBytes,
			TotalBytes:     res.Comm.AllToAllBytes + res.Comm.AllReduceBytes + res.Comm.BroadcastBytes,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printResult(res *core.Result, format string) {
	t := results.NewTable(
		fmt.Sprintf("PageRank pipeline: scale %d, variant %s, N=%s, M=%s",
			res.Config.Scale, res.Config.Variant,
			pipeline.HumanCount(res.Config.N()), pipeline.HumanCount(res.Config.M())),
		"kernel", "seconds", "edges", "edges/second")
	for _, k := range res.Kernels {
		t.AddRow(k.Kernel.String(),
			fmt.Sprintf("%.4f", k.Seconds),
			fmt.Sprintf("%d", k.Edges),
			fmt.Sprintf("%.4g", k.EdgesPerSecond))
	}
	emit(t, format)
	if res.NNZ > 0 {
		fmt.Printf("matrix: %d nonzeros after filtering, mass before filtering %.0f (M=%d)\n",
			res.NNZ, res.MatrixMass, res.Config.M())
	}
}

func runSweep(ctx context.Context, minScale, maxScale, edgeFactor int, seed uint64, variant, format string, ascii bool) error {
	if minScale > maxScale {
		return fmt.Errorf("minscale %d > maxscale %d", minScale, maxScale)
	}
	// The figure sweep measures kernel 0 per variant, so its service
	// runs with the generator cache disabled: a cached edge list would
	// turn the reported K0 edges/second into a cache fetch.
	svc := core.NewService(core.WithCacheCapacity(0), core.WithMaxConcurrent(1))
	defer svc.Close()
	variants := core.Variants()
	if variant != "all" && variant != "" {
		variants = strings.Split(variant, ",")
	}
	figures := [4]*results.Figure{}
	titles := [4]string{
		"Figure 4. Kernel 0 (generate) measurements",
		"Figure 5. Kernel 1 (sort) measurements",
		"Figure 6. Kernel 2 (filter) measurements",
		"Figure 7. Kernel 3 (PageRank) measurements",
	}
	for i := range figures {
		figures[i] = &results.Figure{Title: titles[i], XLabel: "number of edges", YLabel: "edges per second"}
	}
	for _, v := range variants {
		series := [4]results.Series{}
		for k := range series {
			series[k].Label = v
		}
		for s := minScale; s <= maxScale; s++ {
			cfg := core.Config{Scale: s, EdgeFactor: edgeFactor, Seed: seed, Variant: v}
			res, err := svc.Run(ctx, cfg)
			if err != nil {
				return fmt.Errorf("scale %d variant %s: %w", s, v, err)
			}
			m := float64(cfg.M())
			for k, kr := range res.Kernels {
				series[k].X = append(series[k].X, m)
				series[k].Y = append(series[k].Y, kr.EdgesPerSecond)
			}
			fmt.Fprintf(os.Stderr, "done scale=%d variant=%s\n", s, v)
		}
		for k := range figures {
			figures[k].Add(series[k])
		}
	}
	for _, f := range figures {
		fmt.Println(f.Title)
		fmt.Print(f.CSV())
		if ascii {
			fmt.Print(f.ASCII(64, 16))
		}
		fmt.Println()
	}
	return nil
}

// jsonCacheSweepRow is one variant's cold/warm measurement in the
// -cachesweep -json report.  WarmCache is absent for variants that opt
// out of every cache stage (parallel) — their warm run recomputes all
// four kernels.
type jsonCacheSweepRow struct {
	Variant         string          `json:"variant"`
	ColdSeconds     float64         `json:"coldSeconds"`
	WarmSeconds     float64         `json:"warmSeconds"`
	Speedup         float64         `json:"speedup"`
	WarmCache       *jsonCacheStats `json:"warmCache,omitempty"`
	ResidentEntries int             `json:"residentCacheEntries"`
	ResidentBytes   int64           `json:"residentCacheBytes"`
}

// jsonCacheSweep is the -cachesweep shape of the prbench/v3 schema.
type jsonCacheSweep struct {
	Schema      string              `json:"schema"`
	Scale       int                 `json:"scale"`
	EdgeFactor  int                 `json:"edgeFactor"`
	Seed        uint64              `json:"seed"`
	Iterations  int                 `json:"iterations"`
	CacheBudget int64               `json:"cacheBudgetBytes,omitempty"`
	Sweep       []jsonCacheSweepRow `json:"cacheSweep"`
}

// runCacheSweep is the staged-artifact-cache ablation: each variant runs
// the same configuration twice against its own fresh service — cold,
// then warm — and the table reports the wall-clock speedup next to the
// warm run's per-stage hit/miss counters and the cache's resident
// footprint.  The warm ranks are cross-checked bit for bit against the
// cold run's: the cache trades time, never output.
func runCacheSweep(ctx context.Context, scale, edgeFactor int, seed uint64, nfiles int, variants []string, budget int64, workers, iterations int, damping float64, dangling bool, output string, jsonOut bool) error {
	rows := make([]jsonCacheSweepRow, 0, len(variants))
	for _, v := range variants {
		opts := []core.ServiceOption{core.WithMaxConcurrent(1)}
		if budget > 0 {
			opts = append(opts, core.WithCacheBudget(budget))
		}
		svc := core.NewService(opts...)
		cfg := core.Config{
			Scale: scale, EdgeFactor: edgeFactor, Seed: seed, NFiles: nfiles,
			Variant: v, Workers: workers, KeepRank: true,
			PageRank: pagerank.Options{Iterations: iterations, Damping: damping, Dangling: dangling},
		}
		run := func(what string) (*core.Result, float64, error) {
			start := time.Now()
			res, err := svc.Run(ctx, cfg)
			if err != nil {
				return nil, 0, fmt.Errorf("%s %s: %w", v, what, err)
			}
			return res, time.Since(start).Seconds(), nil
		}
		cold, coldS, err := run("cold")
		if err != nil {
			svc.Close()
			return err
		}
		warm, warmS, err := run("warm")
		if err != nil {
			svc.Close()
			return err
		}
		for i := range cold.Rank {
			if cold.Rank[i] != warm.Rank[i] {
				svc.Close()
				return fmt.Errorf("%s: warm rank vector diverges from cold at %d", v, i)
			}
		}
		st := svc.Stats()
		rows = append(rows, jsonCacheSweepRow{
			Variant: v, ColdSeconds: coldS, WarmSeconds: warmS,
			Speedup:         coldS / warmS,
			WarmCache:       newJSONCacheStats(warm.Cache),
			ResidentEntries: st.CacheEntries,
			ResidentBytes:   st.CacheBytes,
		})
		svc.Close()
		fmt.Fprintf(os.Stderr, "done variant=%s cold=%.3fs warm=%.3fs\n", v, coldS, warmS)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonCacheSweep{
			Schema: "prbench/v3", Scale: scale, EdgeFactor: edgeFactor,
			Seed: seed, Iterations: iterations, CacheBudget: budget, Sweep: rows,
		})
	}
	t := results.NewTable(
		fmt.Sprintf("Staged-cache cold/warm ablation: scale %d, %d iterations", scale, iterations),
		"variant", "cold s", "warm s", "speedup", "edges h/m", "sorted h/m", "matrix h/m", "cache MB")
	for _, r := range rows {
		eh, sh, mh := "-", "-", "-"
		if r.WarmCache != nil {
			hm := func(s jsonCacheStage) string { return fmt.Sprintf("%d/%d", s.Hits, s.Misses) }
			eh, sh, mh = hm(r.WarmCache.Edges), hm(r.WarmCache.Sorted), hm(r.WarmCache.Matrix)
		}
		t.AddRow(r.Variant,
			fmt.Sprintf("%.4f", r.ColdSeconds),
			fmt.Sprintf("%.4f", r.WarmSeconds),
			fmt.Sprintf("%.2fx", r.Speedup),
			eh, sh, mh,
			fmt.Sprintf("%.2f", float64(r.ResidentBytes)/1e6))
	}
	emit(t, output)
	fmt.Println("cross-check: warm rank vectors bit-for-bit identical to cold")
	return nil
}

// runFormatSweep is the edge-file format ablation: it runs the full
// pipeline once per codec on the same graph, tabulates kernel-1
// edges/second next to the encoded kernel-0 footprint and the spill
// record, and asserts the final rank vector is bit-for-bit identical
// across formats — the codecs are transport, never semantics.
func runFormatSweep(ctx context.Context, svc *core.Service, scale, edgeFactor int, seed uint64, nfiles int, variant string, runEdges, iterations int, damping float64, dangling bool, output string) error {
	if variant == "all" {
		return fmt.Errorf("-formatsweep ablates one variant; pick one")
	}
	formats := []string{"tsv", "bin", "packed"}
	t := results.NewTable(
		fmt.Sprintf("Kernel-1 edge-file format ablation: scale %d, variant %s", scale, variant),
		"format", "K1 seconds", "K1 edges/s", "k0 bytes/edge", "spill codec", "spill B/edge")
	var baseRank []float64
	m := float64(uint64(edgeFactor) << uint(scale))
	for _, f := range formats {
		cfg := core.Config{
			Scale: scale, EdgeFactor: edgeFactor, Seed: seed, NFiles: nfiles,
			Variant: variant, Format: f, RunEdges: runEdges, KeepRank: true,
			PageRank: pagerank.Options{Iterations: iterations, Damping: damping, Dangling: dangling},
		}
		res, err := svc.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("format %s: %w", f, err)
		}
		var k1 core.KernelResult
		for _, k := range res.Kernels {
			if k.Kernel == core.K1Sort {
				k1 = k
			}
		}
		codec, err := fastio.CodecByName(f)
		if err != nil {
			return err
		}
		k0Bytes, err := fastio.StripedBytes(res.Config.FS, "k0", codec)
		if err != nil {
			return fmt.Errorf("format %s: sizing k0 files: %w", f, err)
		}
		spillCodec, spillPerEdge := "-", "-"
		if res.Spill != nil && res.Spill.BytesWritten > 0 {
			spillCodec = res.Spill.Codec
			spillPerEdge = fmt.Sprintf("%.2f", float64(res.Spill.BytesWritten)/m)
		}
		t.AddRow(f,
			fmt.Sprintf("%.4f", k1.Seconds),
			fmt.Sprintf("%.4g", k1.EdgesPerSecond),
			fmt.Sprintf("%.2f", float64(k0Bytes)/m),
			spillCodec, spillPerEdge)
		if baseRank == nil {
			baseRank = res.Rank
		} else {
			for i := range baseRank {
				if baseRank[i] != res.Rank[i] {
					return fmt.Errorf("format %s: rank vector diverges from %s at %d", f, formats[0], i)
				}
			}
		}
	}
	emit(t, output)
	fmt.Println("cross-check: final rank vectors bit-for-bit identical across formats")
	return nil
}

// parseFault parses the -inject-fault spec: "RANK@ITER" kills RANK at
// the boundary after ITER completed kernel-3 iterations; a trailing
// "@ckpt" moves the kill between the rank's chunk write and the epoch
// commit, leaving the torn epoch the resume must skip.
func parseFault(s string) (*core.FaultPlan, error) {
	parts := strings.Split(s, "@")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf(`bad -inject-fault %q (want "RANK@ITER" or "RANK@ITER@ckpt")`, s)
	}
	rank, err1 := strconv.Atoi(parts[0])
	iter, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf(`bad -inject-fault %q (want "RANK@ITER" or "RANK@ITER@ckpt")`, s)
	}
	f := &core.FaultPlan{KillRank: rank, AtIteration: iter}
	if len(parts) == 3 {
		if parts[2] != "ckpt" {
			return nil, fmt.Errorf(`bad -inject-fault suffix %q (only "ckpt")`, parts[2])
		}
		f.DuringCheckpoint = true
	}
	return f, nil
}

// k3Seconds extracts the kernel-3 wall clock from a pipeline result.
func k3Seconds(res *core.Result) float64 {
	for _, k := range res.Kernels {
		if k.Kernel == core.K3PageRank {
			return k.Seconds
		}
	}
	return 0
}

// runCheckpointed is the checkpoint/restart demonstration: a baseline
// run without checkpointing, then the same configuration writing an
// epoch every N iterations — optionally killed mid-run by the fault
// plan and resumed from the newest complete epoch — with the final
// ranks cross-checked bit for bit against the baseline and the storage
// traffic metered, so the checkpoint overhead is a measured number next
// to the recovery proof.
func runCheckpointed(ctx context.Context, svc *core.Service, cfg core.Config, every int, faultSpec, dir string) error {
	cfg.KeepRank = true
	base, err := svc.Run(ctx, cfg)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	baseK3 := k3Seconds(base)
	iters := base.RankIterations

	var store vfs.FS = vfs.NewMem()
	if dir != "" {
		d, err := vfs.NewDir(dir)
		if err != nil {
			return err
		}
		store = d
	}
	meter := vfs.NewMetered(store)
	var saved []int64
	ck := cfg
	ck.Checkpoint = core.CheckpointSpec{
		FS: meter, Every: every, Resume: true,
		OnCommit: func(epoch int64) { saved = append(saved, epoch) },
	}
	fmt.Printf("checkpointed distributed kernel 3: scale %d, variant %s, epoch every %d of %d iterations\n",
		cfg.Scale, cfg.Variant, every, iters)
	fmt.Printf("  baseline kernel-3:  %.4fs (no checkpointing)\n", baseK3)

	if faultSpec != "" {
		fault, err := parseFault(faultSpec)
		if err != nil {
			return err
		}
		killed := ck
		killed.Fault = fault
		if _, err := svc.Run(ctx, killed); !errors.Is(err, core.ErrFaultInjected) {
			return fmt.Errorf("fault run: got %v, want %v", err, core.ErrFaultInjected)
		}
		when := fmt.Sprintf("after iteration %d", fault.AtIteration)
		if fault.DuringCheckpoint {
			when = fmt.Sprintf("during the epoch-%d checkpoint write (torn epoch)", fault.AtIteration)
		}
		fmt.Printf("  injected fault:     rank %d killed %s\n", fault.KillRank, when)
		newest := int64(0)
		if len(saved) > 0 {
			newest = saved[len(saved)-1]
		}
		fmt.Printf("  epochs before kill: %d (newest complete at iteration %d)\n", len(saved), newest)
	}

	res, err := svc.Run(ctx, ck) // fault-free: completes, resuming if epochs exist
	if err != nil {
		return fmt.Errorf("checkpointed run: %w", err)
	}
	st := res.Checkpoint
	if st == nil {
		return fmt.Errorf("checkpointed run reported no checkpoint stats")
	}
	if st.Resumed {
		fmt.Printf("  resume:             from epoch %d, re-ran %d of %d iterations (%d torn epoch(s) skipped)\n",
			st.ResumedFrom, int64(iters)-st.ResumedFrom, iters, st.TornSkipped)
	}
	ckK3 := k3Seconds(res)
	if st.Resumed {
		fmt.Printf("  resumed kernel-3:   %.4fs\n", ckK3)
	} else {
		fmt.Printf("  checkpointed K3:    %.4fs (%+.1f%% over baseline)\n", ckK3, 100*(ckK3-baseK3)/baseK3)
	}
	iost := meter.Stats()
	fmt.Printf("  checkpoint storage: %d epoch(s) committed, %d bytes written, %d read back\n",
		len(saved), iost.BytesWritten, iost.BytesRead)
	if len(base.Rank) != len(res.Rank) {
		return fmt.Errorf("cross-check failed: rank vector lengths differ")
	}
	for i := range base.Rank {
		if base.Rank[i] != res.Rank[i] {
			return fmt.Errorf("cross-check failed: rank vectors differ at %d after recovery", i)
		}
	}
	fmt.Println("  cross-check:        final ranks bit-for-bit equal to the uncheckpointed run")
	return nil
}

func runDistributed(ctx context.Context, svc *core.Service, scale, edgeFactor int, seed uint64, procs, rankWorkers, iterations int, damping float64, dangling bool, mode string, runEdges int) error {
	l, err := svc.Edges(ctx, core.GraphKey{Scale: scale, EdgeFactor: edgeFactor, Seed: seed})
	if err != nil {
		return err
	}
	n := 1 << uint(scale)
	opt := pagerank.Options{Iterations: iterations, Damping: damping, Dangling: dangling, Seed: seed}
	modes := []dist.ExecMode{}
	switch mode {
	case "both":
		modes = append(modes, dist.ExecSim, dist.ExecGoroutine)
	case "all":
		modes = append(modes, dist.ExecSim, dist.ExecGoroutine, dist.ExecSocket)
	default:
		m, err := dist.ParseExecMode(mode)
		if err != nil {
			return err
		}
		modes = append(modes, m)
	}
	if runEdges > 0 {
		if err := runExternalSort(ctx, l, procs, runEdges, modes); err != nil {
			return err
		}
	}
	var first *dist.Result
	for _, m := range modes {
		out, err := dist.Execute(ctx, dist.Spec{
			Config: dist.Config{Mode: m, Workers: rankWorkers},
			Op:     dist.OpRun, Edges: l, N: n, Procs: procs, PageRank: opt,
		})
		if err != nil {
			return err
		}
		res := out.Run
		fmt.Printf("distributed pipeline (%v): scale %d, %d ranks × %d workers\n", m, scale, procs, rankWorkers)
		fmt.Printf("  filtered nonzeros:  %d\n", res.NNZ)
		fmt.Printf("  all-reduce calls:   %d (%.3g MB)\n", res.Comm.AllReduceCalls, float64(res.Comm.AllReduceBytes)/1e6)
		fmt.Printf("  broadcast calls:    %d (%.3g MB)\n", res.Comm.BroadcastCalls, float64(res.Comm.BroadcastBytes)/1e6)
		predicted := dist.PredictedCommBytes(n, procs, res.Iterations, dangling)
		fmt.Printf("  predicted comm:     %.3g MB\n", float64(predicted)/1e6)
		if res.Wire != nil {
			metered := res.Comm.AllToAllBytes + res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
			fmt.Printf("  socket wire:        %.3g MB payload over %d frames\n",
				float64(res.Wire.DataBytes)/1e6, res.Wire.Frames)
			if res.Wire.DataBytes != metered {
				return fmt.Errorf("socket wire carried %d payload bytes but the collectives metered %d",
					res.Wire.DataBytes, metered)
			}
			fmt.Println("  wire cross-check:   measured socket payload equals the metered comm bytes exactly")
		}
		if res.RankSeconds != nil {
			slowest := 0.0
			for _, s := range res.RankSeconds {
				if s > slowest {
					slowest = s
				}
			}
			fmt.Printf("  slowest rank:       %.4fs (of %d concurrent ranks)\n", slowest, len(res.RankSeconds))
		}
		if first == nil {
			first = res
		} else {
			if first.Comm != res.Comm {
				return fmt.Errorf("mode cross-check failed: comm records differ: %+v vs %+v", first.Comm, res.Comm)
			}
			for i := range first.Rank {
				if first.Rank[i] != res.Rank[i] {
					return fmt.Errorf("mode cross-check failed: rank vectors differ at %d", i)
				}
			}
			fmt.Printf("  cross-check:        %v agrees with %v bit-for-bit, bytes included\n", m, modes[0])
		}
	}
	return nil
}

// runExternalSort runs the out-of-core distributed kernel 1 in each
// requested mode, verifies the output against the serial stable radix
// sort and the communication record against the in-memory distributed
// sort, and reports spill statistics.
func runExternalSort(ctx context.Context, l *edge.List, procs, runEdges int, modes []dist.ExecMode) error {
	serial := l.Clone()
	xsort.RadixByU(serial)
	inMemOut, err := dist.Execute(ctx, dist.Spec{Op: dist.OpSort, Edges: l, Procs: procs})
	if err != nil {
		return err
	}
	inMem := inMemOut.Sort
	for _, m := range modes {
		extOut, err := dist.Execute(ctx, dist.Spec{
			Config: dist.Config{Mode: m}, Op: dist.OpSortExternal,
			Edges: l, Procs: procs, Ext: dist.ExtSortConfig{RunEdges: runEdges},
		})
		if err != nil {
			return err
		}
		res := extOut.ExtSort
		totalRuns := 0
		for _, r := range res.RunsPerRank {
			totalRuns += r
		}
		fmt.Printf("out-of-core distributed sort (%v): %d ranks, %d edges/run buffer\n", m, procs, runEdges)
		fmt.Printf("  spilled runs:       %d (%.3g MB written, %.3g MB read back)\n",
			totalRuns, float64(res.Spill.BytesWritten)/1e6, float64(res.Spill.BytesRead)/1e6)
		fmt.Printf("  all-to-all bytes:   %d (in-memory sort: %d)\n", res.Comm.AllToAllBytes, inMem.Comm.AllToAllBytes)
		if !res.Sorted.Equal(serial) {
			return fmt.Errorf("out-of-core sort (%v) diverges from serial radix sort", m)
		}
		if res.Comm != inMem.Comm {
			return fmt.Errorf("out-of-core sort (%v) comm %+v differs from in-memory %+v", m, res.Comm, inMem.Comm)
		}
		fmt.Println("  cross-check:        bit-for-bit equal to serial sort, bytes equal to in-memory sort")
	}
	return nil
}

// runProcSweep runs the goroutine-rank pipeline at each requested rank
// count crossed with each hybrid intra-rank worker count, tabulating
// wall-clock scaling next to the hardware model's predicted speedup and
// asserting the byte identity at every (p, w) — the Workers axis must
// change wall clock only, never a byte.  Every cell draws the input from
// the service's generator cache, so the Kronecker graph is generated
// once per sweep, not once per cell; the table footer reports the cache
// counters as proof.
func runProcSweep(ctx context.Context, svc *core.Service, scale, edgeFactor int, seed uint64, sweep string, workerCounts []int, iterations int, damping float64, dangling bool, format string) error {
	ps, err := parseIntList(sweep)
	if err != nil {
		return fmt.Errorf("bad -procsweep: %w", err)
	}
	key := core.GraphKey{Scale: scale, EdgeFactor: edgeFactor, Seed: seed}
	n := 1 << uint(scale)
	h := perfmodel.PaperNode()
	t := results.NewTable(
		fmt.Sprintf("Goroutine-rank scaling: scale %d, %d iterations", scale, iterations),
		"ranks", "workers", "slowest rank s", "speedup", "model speedup", "imbalance", "comm MB", "bytes=model")
	base, modelBase := 0.0, 0.0
	for _, p := range ps {
		for _, rw := range workerCounts {
			l, err := svc.Edges(ctx, key) // one generation, then cache hits
			if err != nil {
				return err
			}
			opt := pagerank.Options{Iterations: iterations, Damping: damping, Dangling: dangling, Seed: seed}
			out, err := dist.Execute(ctx, dist.Spec{
				Config: dist.Config{Mode: dist.ExecGoroutine, Workers: rw},
				Op:     dist.OpRun, Edges: l, N: n, Procs: p, PageRank: opt,
			})
			if err != nil {
				return err
			}
			res := out.Run
			w := perfmodel.Workload{Scale: scale, EdgeFactor: edgeFactor, Iterations: iterations, RankWorkers: rw}
			cmp, err := perfmodel.CompareRankElapsed(h, w, res.RankSeconds)
			if err != nil {
				return err
			}
			if base == 0 {
				base = cmp.MeasuredSeconds
				modelBase = perfmodel.ParallelKernel3(h, w, p).EdgesPerSecond
			}
			measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
			exact := measured == dist.PredictedCommBytes(n, p, res.Iterations, dangling)
			t.AddRow(fmt.Sprintf("%d", p),
				fmt.Sprintf("%d", rw),
				fmt.Sprintf("%.4f", cmp.MeasuredSeconds),
				fmt.Sprintf("%.2f", base/cmp.MeasuredSeconds),
				fmt.Sprintf("%.2f", perfmodel.ParallelKernel3(h, w, p).EdgesPerSecond/modelBase),
				fmt.Sprintf("%.2f", cmp.Imbalance),
				fmt.Sprintf("%.3g", float64(measured)/1e6),
				fmt.Sprintf("%v", exact))
			if !exact {
				return fmt.Errorf("p=%d w=%d: measured channel bytes diverge from PredictedCommBytes", p, rw)
			}
		}
	}
	emit(t, format)
	st := svc.Stats()
	fmt.Printf("generator cache: %d hits, %d misses — the sweep's graph was generated once, not once per cell\n",
		st.CacheHits, st.CacheMisses)
	return nil
}

func printPredictions(scale int, format string) {
	h := perfmodel.PaperNode()
	w := perfmodel.Workload{Scale: scale}
	preds := perfmodel.All(h, w)
	t := results.NewTable(
		fmt.Sprintf("Hardware-model predictions (%s, scale %d)", h.Name, scale),
		"kernel", "predicted seconds", "predicted edges/s", "bound")
	for i, p := range preds {
		t.AddRow(fmt.Sprintf("kernel%d", i),
			fmt.Sprintf("%.3f", p.Seconds),
			fmt.Sprintf("%.3g", p.EdgesPerSecond),
			p.Bound)
	}
	emit(t, format)
	pt := results.NewTable("Parallel kernel-3 model", "processors", "speedup", "bound")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		pred := perfmodel.ParallelKernel3(h, w, p)
		pt.AddRow(fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2f", perfmodel.Speedup(h, w, p)),
			pred.Bound)
	}
	emit(pt, format)
}
