// Command prbench runs the PageRank pipeline benchmark.
//
// Single run (all four kernels, in-memory storage):
//
//	prbench -scale 18 -variant csr
//
// Reproduce the paper's figures (edges/second vs. number of edges for every
// implementation variant, kernels 0-3):
//
//	prbench -sweep -minscale 16 -maxscale 20
//
// Simulated distributed run with communication accounting:
//
//	prbench -scale 16 -procs 8
//
// Hardware-model predictions for the paper's platform:
//
//	prbench -scale 22 -predict
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/results"
	"repro/internal/vfs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "Graph500 scale factor S (N = 2^S)")
		edgeFactor = flag.Int("edgefactor", 16, "average edges per vertex k")
		seed       = flag.Uint64("seed", 1, "random seed")
		nfiles     = flag.Int("nfiles", 1, "number of edge files (the paper's free parameter)")
		variant    = flag.String("variant", "csr", "implementation variant, or 'all'")
		generator  = flag.String("generator", "kronecker", "kernel-0 generator: kronecker, ppl, er")
		workers    = flag.Int("workers", 0, "worker goroutines for parallel variants (0 = GOMAXPROCS)")
		dir        = flag.String("dir", "", "storage directory (empty = in-memory)")
		iterations = flag.Int("iterations", 20, "kernel-3 PageRank iterations")
		damping    = flag.Float64("damping", 0.85, "kernel-3 damping factor c")
		dangling   = flag.Bool("dangling", false, "apply the dangling-node correction in kernel 3")
		sortEnds   = flag.Bool("sortends", false, "kernel 1 sorts by (u,v) instead of u")
		kernels    = flag.String("kernels", "0123", "kernels to run, e.g. 01 or 23")
		sweep      = flag.Bool("sweep", false, "sweep scales and emit the paper's figures 4-7")
		minScale   = flag.Int("minscale", 16, "sweep: smallest scale")
		maxScale   = flag.Int("maxscale", 18, "sweep: largest scale")
		procs      = flag.Int("procs", 0, "simulate a distributed run on this many processors")
		predict    = flag.Bool("predict", false, "print hardware-model predictions and exit")
		format     = flag.String("format", "table", "output format: table, csv, markdown")
		ascii      = flag.Bool("ascii", true, "sweep: also draw ASCII log-log plots")
	)
	flag.Parse()

	if *predict {
		printPredictions(*scale, *format)
		return
	}
	if *procs > 0 {
		if err := runDistributed(*scale, *edgeFactor, *seed, *procs, *iterations, *damping, *dangling); err != nil {
			fatal(err)
		}
		return
	}
	if *sweep {
		if err := runSweep(*minScale, *maxScale, *edgeFactor, *seed, *variant, *format, *ascii); err != nil {
			fatal(err)
		}
		return
	}

	cfg := core.Config{
		Scale:           *scale,
		EdgeFactor:      *edgeFactor,
		Seed:            *seed,
		NFiles:          *nfiles,
		Variant:         *variant,
		Generator:       pipeline.GeneratorKind(*generator),
		Workers:         *workers,
		SortEndVertices: *sortEnds,
		PageRank: pagerank.Options{
			Iterations: *iterations,
			Damping:    *damping,
			Dangling:   *dangling,
		},
	}
	if *dir != "" {
		fsys, err := vfs.NewDir(*dir)
		if err != nil {
			fatal(err)
		}
		cfg.FS = fsys
	}
	ks, err := parseKernels(*kernels)
	if err != nil {
		fatal(err)
	}
	res, err := core.RunKernels(cfg, ks)
	if err != nil {
		fatal(err)
	}
	printResult(res, *format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prbench:", err)
	os.Exit(1)
}

func parseKernels(s string) ([]core.Kernel, error) {
	var ks []core.Kernel
	for _, c := range s {
		switch c {
		case '0':
			ks = append(ks, core.K0Generate)
		case '1':
			ks = append(ks, core.K1Sort)
		case '2':
			ks = append(ks, core.K2Filter)
		case '3':
			ks = append(ks, core.K3PageRank)
		default:
			return nil, fmt.Errorf("bad kernel %q in -kernels", string(c))
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("-kernels selected nothing")
	}
	return ks, nil
}

func emit(t *results.Table, format string) {
	switch format {
	case "csv":
		fmt.Print(t.CSV())
	case "markdown":
		fmt.Print(t.Markdown())
	default:
		fmt.Print(t.Plain())
	}
}

func printResult(res *core.Result, format string) {
	t := results.NewTable(
		fmt.Sprintf("PageRank pipeline: scale %d, variant %s, N=%s, M=%s",
			res.Config.Scale, res.Config.Variant,
			pipeline.HumanCount(res.Config.N()), pipeline.HumanCount(res.Config.M())),
		"kernel", "seconds", "edges", "edges/second")
	for _, k := range res.Kernels {
		t.AddRow(k.Kernel.String(),
			fmt.Sprintf("%.4f", k.Seconds),
			fmt.Sprintf("%d", k.Edges),
			fmt.Sprintf("%.4g", k.EdgesPerSecond))
	}
	emit(t, format)
	if res.NNZ > 0 {
		fmt.Printf("matrix: %d nonzeros after filtering, mass before filtering %.0f (M=%d)\n",
			res.NNZ, res.MatrixMass, res.Config.M())
	}
}

func runSweep(minScale, maxScale, edgeFactor int, seed uint64, variant, format string, ascii bool) error {
	if minScale > maxScale {
		return fmt.Errorf("minscale %d > maxscale %d", minScale, maxScale)
	}
	variants := core.Variants()
	if variant != "all" && variant != "" {
		variants = strings.Split(variant, ",")
	}
	figures := [4]*results.Figure{}
	titles := [4]string{
		"Figure 4. Kernel 0 (generate) measurements",
		"Figure 5. Kernel 1 (sort) measurements",
		"Figure 6. Kernel 2 (filter) measurements",
		"Figure 7. Kernel 3 (PageRank) measurements",
	}
	for i := range figures {
		figures[i] = &results.Figure{Title: titles[i], XLabel: "number of edges", YLabel: "edges per second"}
	}
	for _, v := range variants {
		series := [4]results.Series{}
		for k := range series {
			series[k].Label = v
		}
		for s := minScale; s <= maxScale; s++ {
			cfg := core.Config{Scale: s, EdgeFactor: edgeFactor, Seed: seed, Variant: v}
			res, err := core.Run(cfg)
			if err != nil {
				return fmt.Errorf("scale %d variant %s: %w", s, v, err)
			}
			m := float64(cfg.M())
			for k, kr := range res.Kernels {
				series[k].X = append(series[k].X, m)
				series[k].Y = append(series[k].Y, kr.EdgesPerSecond)
			}
			fmt.Fprintf(os.Stderr, "done scale=%d variant=%s\n", s, v)
		}
		for k := range figures {
			figures[k].Add(series[k])
		}
	}
	for _, f := range figures {
		fmt.Println(f.Title)
		fmt.Print(f.CSV())
		if ascii {
			fmt.Print(f.ASCII(64, 16))
		}
		fmt.Println()
	}
	return nil
}

func runDistributed(scale, edgeFactor int, seed uint64, procs, iterations int, damping float64, dangling bool) error {
	kcfg := kronecker.New(scale, seed)
	kcfg.EdgeFactor = edgeFactor
	l, err := kronecker.Generate(kcfg)
	if err != nil {
		return err
	}
	opt := pagerank.Options{Iterations: iterations, Damping: damping, Dangling: dangling, Seed: seed}
	res, err := dist.Run(l, int(kcfg.N()), procs, opt)
	if err != nil {
		return err
	}
	fmt.Printf("distributed pipeline: scale %d, %d processors\n", scale, procs)
	fmt.Printf("  filtered nonzeros:  %d\n", res.NNZ)
	fmt.Printf("  all-reduce calls:   %d (%.3g MB)\n", res.Comm.AllReduceCalls, float64(res.Comm.AllReduceBytes)/1e6)
	fmt.Printf("  broadcast calls:    %d (%.3g MB)\n", res.Comm.BroadcastCalls, float64(res.Comm.BroadcastBytes)/1e6)
	predicted := dist.PredictedCommBytes(int(kcfg.N()), procs, iterations, dangling)
	fmt.Printf("  predicted comm:     %.3g MB\n", float64(predicted)/1e6)
	return nil
}

func printPredictions(scale int, format string) {
	h := perfmodel.PaperNode()
	w := perfmodel.Workload{Scale: scale}
	preds := perfmodel.All(h, w)
	t := results.NewTable(
		fmt.Sprintf("Hardware-model predictions (%s, scale %d)", h.Name, scale),
		"kernel", "predicted seconds", "predicted edges/s", "bound")
	for i, p := range preds {
		t.AddRow(fmt.Sprintf("kernel%d", i),
			fmt.Sprintf("%.3f", p.Seconds),
			fmt.Sprintf("%.3g", p.EdgesPerSecond),
			p.Bound)
	}
	emit(t, format)
	pt := results.NewTable("Parallel kernel-3 model", "processors", "speedup", "bound")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		pred := perfmodel.ParallelKernel3(h, w, p)
		pt.AddRow(fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2f", perfmodel.Speedup(h, w, p)),
			pred.Bound)
	}
	emit(pt, format)
}
