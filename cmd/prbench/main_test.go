package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseKernels(t *testing.T) {
	ks, err := parseKernels("0123")
	if err != nil || len(ks) != 4 {
		t.Fatalf("parseKernels(0123) = %v, %v", ks, err)
	}
	if ks[0] != core.K0Generate || ks[3] != core.K3PageRank {
		t.Errorf("kernel order: %v", ks)
	}
	ks, err = parseKernels("23")
	if err != nil || len(ks) != 2 || ks[0] != core.K2Filter {
		t.Errorf("parseKernels(23) = %v, %v", ks, err)
	}
	if _, err := parseKernels("4"); err == nil {
		t.Error("kernel 4 accepted")
	}
	if _, err := parseKernels(""); err == nil {
		t.Error("empty kernels accepted")
	}
	if _, err := parseKernels("0x"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("1,2, 8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseIntList(1,2, 8) = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "a", "1,,2"} {
		if _, err := parseIntList(bad); err == nil {
			t.Errorf("parseIntList(%q) accepted", bad)
		}
	}
}
