// Command sloc reproduces the paper's Table I ("Source lines of code"):
// it counts non-blank, non-comment Go source lines for each implementation
// variant of the pipeline, plus the shared kernel substrate each one leans
// on.  The paper's table compares the C++/Python/Pandas/Matlab/Octave/Julia
// serial codes (494/162/162/102/102/162 lines); here each variant file
// plays the role of one language implementation.
//
//	sloc -root .
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/results"
)

func main() {
	var (
		root   = flag.String("root", ".", "repository root")
		format = flag.String("format", "table", "output format: table, csv, markdown")
	)
	flag.Parse()

	variantsDir := filepath.Join(*root, "internal", "pipeline")
	entries, err := os.ReadDir(variantsDir)
	if err != nil {
		fatal(err)
	}
	counts := map[string]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "variant_") || !strings.HasSuffix(name, ".go") {
			continue
		}
		n, err := countSLOC(filepath.Join(variantsDir, name))
		if err != nil {
			fatal(err)
		}
		variant := strings.TrimSuffix(strings.TrimPrefix(name, "variant_"), ".go")
		counts[variant] = n
	}
	if len(counts) == 0 {
		fatal(fmt.Errorf("no variant files under %s", variantsDir))
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	t := results.NewTable("Table I. Source lines of code (per implementation variant)",
		"Variant", "Source Lines of Code")
	for _, n := range names {
		t.AddRow(n, fmt.Sprintf("%d", counts[n]))
	}
	switch *format {
	case "csv":
		fmt.Print(t.CSV())
	case "markdown":
		fmt.Print(t.Markdown())
	default:
		fmt.Print(t.Plain())
	}
}

// countSLOC counts non-blank lines that are not pure comment lines.
// Block comments are tracked coarsely (a /* ... */ spanning lines counts
// as comment lines), which matches how the paper's SLOC figures were
// produced (simple line filters).
func countSLOC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sloc:", err)
	os.Exit(1)
}
