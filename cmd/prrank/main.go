// Command prrank runs kernels 2 and 3: it rebuilds the matrix from the
// kernel-1 files (kernel 3 needs kernel 2's in-memory output) and performs
// the timed 20-iteration PageRank, reporting edges processed per second
// (20·M / time).  With -top it prints the highest-ranked vertices.
//
//	prrank -scale 18 -dir /tmp/prdata -top 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/pagerank"
	"repro/internal/vfs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "Graph500 scale factor (must match prgen)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (must match prgen)")
		dir        = flag.String("dir", "prdata", "data directory holding kernel-1 files")
		variant    = flag.String("variant", "csr", "implementation variant")
		iterations = flag.Int("iterations", 20, "PageRank iterations")
		damping    = flag.Float64("damping", 0.85, "damping factor c")
		dangling   = flag.Bool("dangling", false, "apply dangling-node correction")
		seed       = flag.Uint64("seed", 1, "seed for the initial rank vector")
		top        = flag.Int("top", 0, "print the top-K ranked vertices")
	)
	flag.Parse()
	fsys, err := vfs.NewDir(*dir)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Scale: *scale, EdgeFactor: *edgeFactor, FS: fsys, Variant: *variant,
		Seed: *seed, KeepRank: *top > 0,
		PageRank: pagerank.Options{Iterations: *iterations, Damping: *damping, Dangling: *dangling, Seed: *seed},
	}
	res, err := core.RunOnce(context.Background(), cfg, core.K2Filter, core.K3PageRank)
	if err != nil {
		fatal(err)
	}
	k := res.KernelResultFor(core.K3PageRank)
	fmt.Printf("kernel 3: %d iterations, %d edge traversals in %.3fs (%.4g edges/s)\n",
		res.RankIterations, k.Edges, k.Seconds, k.EdgesPerSecond)
	if *top > 0 {
		printTop(res.Rank, *top)
	}
}

func printTop(rank []float64, k int) {
	type vr struct {
		v int
		r float64
	}
	all := make([]vr, len(rank))
	for i, r := range rank {
		all[i] = vr{i, r}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	if k > len(all) {
		k = len(all)
	}
	fmt.Println("top ranked vertices:")
	for i := 0; i < k; i++ {
		fmt.Printf("  %2d. vertex %-10d rank %.6g\n", i+1, all[i].v, all[i].r)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prrank:", err)
	os.Exit(1)
}
