// Command prgen runs kernel 0 standalone: it generates a Graph500
// Kronecker graph (or an alternative generator's graph) and writes the
// tab-separated edge files the rest of the pipeline consumes.
//
//	prgen -scale 18 -nfiles 4 -dir /tmp/prdata
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/vfs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "Graph500 scale factor")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "random seed")
		nfiles     = flag.Int("nfiles", 1, "number of output files")
		dir        = flag.String("dir", "prdata", "output directory")
		variant    = flag.String("variant", "csr", "implementation variant")
		generator  = flag.String("generator", "kronecker", "generator: kronecker, ppl, er")
		format     = flag.String("format", "", "edge-file format: tsv, naivetsv, bin, packed (default: variant's)")
	)
	flag.Parse()
	fsys, err := vfs.NewDir(*dir)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Scale: *scale, EdgeFactor: *edgeFactor, Seed: *seed, NFiles: *nfiles,
		FS: fsys, Variant: *variant, Generator: pipeline.GeneratorKind(*generator),
		Format: *format,
	}
	start := time.Now()
	res, err := core.RunOnce(context.Background(), cfg, core.K0Generate)
	if err != nil {
		fatal(err)
	}
	k := res.Kernels[0]
	fmt.Printf("kernel 0: %d edges in %.3fs (%.4g edges/s, untimed in the benchmark) -> %s [%s]\n",
		k.Edges, k.Seconds, k.EdgesPerSecond, *dir, pipeline.FormatName(cfg))
	_ = start
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prgen:", err)
	os.Exit(1)
}
