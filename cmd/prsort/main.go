// Command prsort runs kernel 1 standalone: it reads the kernel-0 edge
// files from a directory, sorts the edges by start vertex, and writes the
// kernel-1 files back to the same directory, reporting edges sorted per
// second.
//
//	prsort -scale 18 -dir /tmp/prdata
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fastio"
	"repro/internal/vfs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "Graph500 scale factor (must match prgen)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (must match prgen)")
		nfiles     = flag.Int("nfiles", 1, "number of output files")
		dir        = flag.String("dir", "prdata", "data directory holding kernel-0 files")
		variant    = flag.String("variant", "csr", "implementation variant")
		sortEnds   = flag.Bool("sortends", false, "sort by (u,v) instead of u only")
		format     = flag.String("format", "", "edge-file format: tsv, naivetsv, bin, packed (default: detect from k0 files)")
	)
	flag.Parse()
	fsys, err := vfs.NewDir(*dir)
	if err != nil {
		fatal(err)
	}
	codec, err := fastio.DetectStriped(fsys, "k0")
	if err != nil {
		fatal(fmt.Errorf("detecting k0 format: %w", err))
	}
	if *format != "" && *format != codec.Name() {
		fatal(fmt.Errorf("k0 files in %s are %q but -format says %q", *dir, codec.Name(), *format))
	}
	cfg := core.Config{
		Scale: *scale, EdgeFactor: *edgeFactor, NFiles: *nfiles,
		FS: fsys, Variant: *variant, SortEndVertices: *sortEnds,
		Format: codec.Name(),
	}
	res, err := core.RunOnce(context.Background(), cfg, core.K1Sort)
	if err != nil {
		fatal(err)
	}
	k := res.Kernels[0]
	fmt.Printf("kernel 1: sorted %d edges in %.3fs (%.4g edges/s)\n", k.Edges, k.Seconds, k.EdgesPerSecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prsort:", err)
	os.Exit(1)
}
