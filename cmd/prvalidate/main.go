// Command prvalidate runs the pipeline's correctness-validation suite —
// the repository's answer to the paper's §V question "What outputs should
// be recorded to validate correctness?".  It executes the full pipeline
// for the chosen variant(s) and audits every recorded output: file
// contents, sort postconditions, matrix mass, filter semantics, engine
// independence of the rank vector, and (at small scales) the dense
// eigenvector check.
//
//	prvalidate -scale 8 -variant all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func main() {
	var (
		scale      = flag.Int("scale", 8, "Graph500 scale factor")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "random seed")
		variant    = flag.String("variant", "all", "variant to validate, or 'all'")
		generator  = flag.String("generator", "kronecker", "kernel-0 generator")
		format     = flag.String("format", "", "edge-file format: tsv, naivetsv, bin, packed (default: variant's)")
	)
	flag.Parse()
	variants := core.Variants()
	if *variant != "all" {
		variants = []string{*variant}
	}
	failed := 0
	for _, v := range variants {
		cfg := core.Config{
			Scale: *scale, EdgeFactor: *edgeFactor, Seed: *seed,
			Variant: v, Generator: pipeline.GeneratorKind(*generator),
			Format: *format,
		}
		rep, err := pipeline.Validate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prvalidate: %s: %v\n", v, err)
			failed++
			continue
		}
		status := "PASS"
		if !rep.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-10s %s\n", v, status)
		for _, c := range rep.Checks {
			mark := "ok"
			if !c.Passed {
				mark = "FAIL"
			}
			fmt.Printf("  %-4s %-4s %s (%s)\n", c.ID, mark, c.Name, c.Detail)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
