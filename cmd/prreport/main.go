// Command prreport regenerates the paper's whole evaluation section in one
// run: Table II, a figure sweep across all implementation variants, the
// correctness-validation suite, the hardware-model predictions and the
// distributed-simulation communication check, emitted as a single markdown
// report.
//
//	prreport -minscale 12 -maxscale 14 > report.md
//
// Larger scales reproduce the paper's axes but take correspondingly longer
// (the naive variant's kernel 2 is the long pole, exactly as in the paper).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/results"
)

func main() {
	var (
		minScale = flag.Int("minscale", 12, "sweep: smallest scale")
		maxScale = flag.Int("maxscale", 14, "sweep: largest scale")
		seed     = flag.Uint64("seed", 1, "random seed")
		procs    = flag.Int("procs", 4, "distributed simulation processor count")
	)
	flag.Parse()

	fmt.Println("# PageRank Pipeline Benchmark — evaluation report")
	fmt.Println()

	tableII()
	figures(*minScale, *maxScale, *seed)
	validation(*seed)
	predictions()
	distributed(*seed, *procs)
}

func tableII() {
	fmt.Println("## Table II — benchmark run sizes")
	fmt.Println()
	t := results.NewTable("", "Scale", "Max Vertices", "Max Edges", "~Memory")
	for _, r := range pipeline.SizeTable(pipeline.PaperScales, 0, 0) {
		t.AddRow(fmt.Sprintf("%d", r.Scale), pipeline.HumanCount(r.MaxVertices),
			pipeline.HumanCount(r.MaxEdges), pipeline.HumanBytes(r.MemoryBytes))
	}
	fmt.Println(t.Markdown())
}

func figures(minScale, maxScale int, seed uint64) {
	titles := [4]string{
		"Figure 4 — kernel 0 (generate)",
		"Figure 5 — kernel 1 (sort)",
		"Figure 6 — kernel 2 (filter)",
		"Figure 7 — kernel 3 (PageRank)",
	}
	figs := [4]*results.Figure{}
	for k := range figs {
		figs[k] = &results.Figure{Title: titles[k], XLabel: "number of edges", YLabel: "edges per second"}
	}
	for _, v := range core.Variants() {
		series := [4]results.Series{}
		for k := range series {
			series[k].Label = v
		}
		for s := minScale; s <= maxScale; s++ {
			cfg := core.Config{Scale: s, Seed: seed, Variant: v}
			res, err := core.Run(cfg)
			if err != nil {
				fatal(err)
			}
			for k, kr := range res.Kernels {
				series[k].X = append(series[k].X, float64(cfg.M()))
				series[k].Y = append(series[k].Y, kr.EdgesPerSecond)
			}
		}
		for k := range figs {
			figs[k].Add(series[k])
		}
	}
	for _, f := range figs {
		fmt.Printf("## %s\n\n```\n%s```\n\n", f.Title, f.ASCII(64, 16))
		fmt.Printf("```csv\n%s```\n\n", f.CSV())
	}
}

func validation(seed uint64) {
	fmt.Println("## Correctness validation (V1–V6)")
	fmt.Println()
	t := results.NewTable("", "Variant", "Result", "Checks")
	for _, v := range core.Variants() {
		rep, err := pipeline.Validate(core.Config{Scale: 8, Seed: seed, Variant: v})
		if err != nil {
			fatal(err)
		}
		status := "PASS"
		if !rep.Passed {
			status = "FAIL"
		}
		t.AddRow(v, status, fmt.Sprintf("%d", len(rep.Checks)))
	}
	fmt.Println(t.Markdown())
}

func predictions() {
	fmt.Println("## Hardware-model predictions (paper platform, scale 22)")
	fmt.Println()
	h := perfmodel.PaperNode()
	w := perfmodel.Workload{Scale: 22}
	t := results.NewTable("", "Kernel", "Predicted edges/s", "Bound")
	for i, p := range perfmodel.All(h, w) {
		t.AddRow(fmt.Sprintf("kernel %d", i), fmt.Sprintf("%.3g", p.EdgesPerSecond), p.Bound)
	}
	fmt.Println(t.Markdown())
}

func distributed(seed uint64, procs int) {
	fmt.Println("## Distributed simulation")
	fmt.Println()
	kcfg := kronecker.New(12, seed)
	l, err := kronecker.Generate(kcfg)
	if err != nil {
		fatal(err)
	}
	res, err := dist.Run(l, int(kcfg.N()), procs, pagerank.Options{Seed: seed})
	if err != nil {
		fatal(err)
	}
	predicted := dist.PredictedCommBytes(int(kcfg.N()), procs, pagerank.DefaultIterations, false)
	fmt.Printf("- processors: %d\n", procs)
	fmt.Printf("- all-reduce calls: %d, broadcast calls: %d\n", res.Comm.AllReduceCalls, res.Comm.BroadcastCalls)
	fmt.Printf("- measured communication: %d bytes\n", res.Comm.AllReduceBytes+res.Comm.BroadcastBytes)
	fmt.Printf("- closed-form prediction: %d bytes (must match exactly)\n", predicted)
	match := res.Comm.AllReduceBytes+res.Comm.BroadcastBytes == predicted
	fmt.Printf("- match: %v\n\n", match)
	if !match {
		fatal(fmt.Errorf("measured communication diverges from the closed-form model"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prreport:", err)
	os.Exit(1)
}
