// Command prreport regenerates the paper's whole evaluation section in one
// run: Table II, a figure sweep across all implementation variants, the
// correctness-validation suite, the hardware-model predictions, and the
// distributed communication check — both execution modes cross-checked
// bit-for-bit against each other and against the closed-form byte model,
// the out-of-core distributed sort checked against the serial sort and
// the in-memory sort's communication record, plus a goroutine-rank
// wall-clock scaling table — emitted as a single markdown report.
//
//	prreport -minscale 12 -maxscale 14 > report.md
//
// Larger scales reproduce the paper's axes but take correspondingly longer
// (the naive variant's kernel 2 is the long pole, exactly as in the paper).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/results"
	"repro/internal/xsort"
)

func main() {
	var (
		minScale = flag.Int("minscale", 12, "sweep: smallest scale")
		maxScale = flag.Int("maxscale", 14, "sweep: largest scale")
		seed     = flag.Uint64("seed", 1, "random seed")
		procs    = flag.Int("procs", 4, "distributed simulation processor count")
	)
	flag.Parse()

	fmt.Println("# PageRank Pipeline Benchmark — evaluation report")
	fmt.Println()

	tableII()
	figures(*minScale, *maxScale, *seed)
	validation(*seed)
	predictions()
	distributed(*seed, *procs)
}

func tableII() {
	fmt.Println("## Table II — benchmark run sizes")
	fmt.Println()
	t := results.NewTable("", "Scale", "Max Vertices", "Max Edges", "~Memory")
	for _, r := range pipeline.SizeTable(pipeline.PaperScales, 0, 0) {
		t.AddRow(fmt.Sprintf("%d", r.Scale), pipeline.HumanCount(r.MaxVertices),
			pipeline.HumanCount(r.MaxEdges), pipeline.HumanBytes(r.MemoryBytes))
	}
	fmt.Println(t.Markdown())
}

func figures(minScale, maxScale int, seed uint64) {
	// Like prbench -sweep: the per-variant kernel-0 measurement must
	// actually generate, so this service's cache is disabled.
	svc := core.NewService(core.WithCacheCapacity(0), core.WithMaxConcurrent(1))
	defer svc.Close()
	titles := [4]string{
		"Figure 4 — kernel 0 (generate)",
		"Figure 5 — kernel 1 (sort)",
		"Figure 6 — kernel 2 (filter)",
		"Figure 7 — kernel 3 (PageRank)",
	}
	figs := [4]*results.Figure{}
	for k := range figs {
		figs[k] = &results.Figure{Title: titles[k], XLabel: "number of edges", YLabel: "edges per second"}
	}
	for _, v := range core.Variants() {
		series := [4]results.Series{}
		for k := range series {
			series[k].Label = v
		}
		for s := minScale; s <= maxScale; s++ {
			cfg := core.Config{Scale: s, Seed: seed, Variant: v}
			res, err := svc.Run(context.Background(), cfg)
			if err != nil {
				fatal(err)
			}
			for k, kr := range res.Kernels {
				series[k].X = append(series[k].X, float64(cfg.M()))
				series[k].Y = append(series[k].Y, kr.EdgesPerSecond)
			}
		}
		for k := range figs {
			figs[k].Add(series[k])
		}
	}
	for _, f := range figs {
		fmt.Printf("## %s\n\n```\n%s```\n\n", f.Title, f.ASCII(64, 16))
		fmt.Printf("```csv\n%s```\n\n", f.CSV())
	}
}

func validation(seed uint64) {
	fmt.Println("## Correctness validation (V1–V6)")
	fmt.Println()
	t := results.NewTable("", "Variant", "Result", "Checks")
	for _, v := range core.Variants() {
		rep, err := pipeline.Validate(core.Config{Scale: 8, Seed: seed, Variant: v})
		if err != nil {
			fatal(err)
		}
		status := "PASS"
		if !rep.Passed {
			status = "FAIL"
		}
		t.AddRow(v, status, fmt.Sprintf("%d", len(rep.Checks)))
	}
	fmt.Println(t.Markdown())
}

func predictions() {
	fmt.Println("## Hardware-model predictions (paper platform, scale 22)")
	fmt.Println()
	h := perfmodel.PaperNode()
	w := perfmodel.Workload{Scale: 22}
	t := results.NewTable("", "Kernel", "Predicted edges/s", "Bound")
	for i, p := range perfmodel.All(h, w) {
		t.AddRow(fmt.Sprintf("kernel %d", i), fmt.Sprintf("%.3g", p.EdgesPerSecond), p.Bound)
	}
	fmt.Println(t.Markdown())
}

func distributed(seed uint64, procs int) {
	fmt.Println("## Distributed execution (simulated and goroutine ranks)")
	fmt.Println()
	kcfg := kronecker.New(12, seed)
	l, err := kronecker.Generate(kcfg)
	if err != nil {
		fatal(err)
	}
	n := int(kcfg.N())
	runMode := func(mode dist.ExecMode) *dist.Result {
		out, err := dist.Execute(context.Background(), dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpRun,
			Edges: l, N: n, Procs: procs, PageRank: pagerank.Options{Seed: seed},
		})
		if err != nil {
			fatal(err)
		}
		return out.Run
	}
	sim := runMode(dist.ExecSim)
	real := runMode(dist.ExecGoroutine)
	predicted := dist.PredictedCommBytes(n, procs, pagerank.DefaultIterations, false)
	fmt.Printf("- processors: %d\n", procs)
	fmt.Printf("- all-reduce calls: %d, broadcast calls: %d\n", sim.Comm.AllReduceCalls, sim.Comm.BroadcastCalls)
	fmt.Printf("- simulated communication: %d bytes\n", sim.Comm.AllReduceBytes+sim.Comm.BroadcastBytes)
	fmt.Printf("- goroutine channel bytes: %d\n", real.Comm.AllReduceBytes+real.Comm.BroadcastBytes)
	fmt.Printf("- closed-form prediction: %d bytes (all three must match exactly)\n", predicted)
	match := sim.Comm == real.Comm && sim.Comm.AllReduceBytes+sim.Comm.BroadcastBytes == predicted
	bitwise := len(sim.Rank) == len(real.Rank)
	if bitwise {
		for i := range sim.Rank {
			if real.Rank[i] != sim.Rank[i] {
				bitwise = false
				break
			}
		}
	}
	fmt.Printf("- bytes match: %v, rank vectors bit-for-bit: %v\n\n", match, bitwise)
	if !match || !bitwise {
		fatal(fmt.Errorf("goroutine runtime diverges from the simulation or the closed-form model"))
	}
	outOfCore(l, procs)
	scaling(l, n, seed)
}

// outOfCore cross-checks the out-of-core distributed kernel 1: both
// execution modes against the serial stable radix sort bit for bit, the
// communication record against the in-memory distributed sort, and the
// spill volume against the 16-bytes-per-edge round trip the parallel
// hardware model prices.
func outOfCore(l *edge.List, procs int) {
	fmt.Println("### Out-of-core distributed sort")
	fmt.Println()
	serial := l.Clone()
	xsort.RadixByU(serial)
	inMemOut, err := dist.Execute(context.Background(), dist.Spec{Op: dist.OpSort, Edges: l, Procs: procs})
	if err != nil {
		fatal(err)
	}
	inMem := inMemOut.Sort
	runEdges := l.Len()/(3*procs) + 1 // force ~3 spilled runs per rank
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		out, err := dist.Execute(context.Background(), dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpSortExternal,
			Edges: l, Procs: procs, Ext: dist.ExtSortConfig{RunEdges: runEdges},
		})
		if err != nil {
			fatal(err)
		}
		res := out.ExtSort
		if !res.Sorted.Equal(serial) {
			fatal(fmt.Errorf("out-of-core sort (%v) diverges from the serial radix sort", mode))
		}
		if res.Comm != inMem.Comm {
			fatal(fmt.Errorf("out-of-core sort (%v) comm %+v differs from in-memory %+v", mode, res.Comm, inMem.Comm))
		}
		totalRuns := 0
		for _, r := range res.RunsPerRank {
			totalRuns += r
		}
		fmt.Printf("- %v: %d runs spilled (%d-edge buffers), %d bytes written + %d read back, all-to-all %d bytes\n",
			mode, totalRuns, runEdges, res.Spill.BytesWritten, res.Spill.BytesRead, res.Comm.AllToAllBytes)
	}
	fmt.Println("- both modes bit-for-bit equal to the serial sort; comm records equal the in-memory sample sort's")
	fmt.Println()
}

// scaling tabulates the goroutine runtime's wall-clock across rank counts
// against the parallel hardware model — the validation of the simulated
// comm schedule against real concurrent execution.
func scaling(l *edge.List, n int, seed uint64) {
	fmt.Println("### Goroutine-rank wall-clock scaling")
	fmt.Println()
	h := perfmodel.PaperNode()
	w := perfmodel.Workload{Scale: 12}
	t := results.NewTable("", "Ranks", "Slowest rank s", "Speedup", "Model speedup", "Imbalance")
	base := 0.0
	for _, p := range []int{1, 2, 4, 8} {
		out, err := dist.Execute(context.Background(), dist.Spec{
			Config: dist.Config{Mode: dist.ExecGoroutine}, Op: dist.OpRun,
			Edges: l, N: n, Procs: p, PageRank: pagerank.Options{Seed: seed},
		})
		if err != nil {
			fatal(err)
		}
		res := out.Run
		cmp, err := perfmodel.CompareRankElapsed(h, w, res.RankSeconds)
		if err != nil {
			fatal(err)
		}
		if base == 0 {
			base = cmp.MeasuredSeconds
		}
		t.AddRow(fmt.Sprintf("%d", p),
			fmt.Sprintf("%.4f", cmp.MeasuredSeconds),
			fmt.Sprintf("%.2f", base/cmp.MeasuredSeconds),
			fmt.Sprintf("%.2f", perfmodel.Speedup(h, w, p)),
			fmt.Sprintf("%.2f", cmp.Imbalance))
	}
	fmt.Println(t.Markdown())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prreport:", err)
	os.Exit(1)
}
