// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation section:
//
//	BenchmarkTableISLOC       — Table I,  source lines of code per variant
//	BenchmarkTableIIRunSizes  — Table II, benchmark run sizes
//	BenchmarkFigure4Kernel0   — Figure 4, K0 edges/s vs edges, per variant
//	BenchmarkFigure5Kernel1   — Figure 5, K1 edges/s vs edges, per variant
//	BenchmarkFigure6Kernel2   — Figure 6, K2 edges/s vs edges, per variant
//	BenchmarkFigure7Kernel3   — Figure 7, K3 edges/s vs edges, per variant
//
// plus BenchmarkAblation* for the design alternatives the paper's §V
// leaves open.  Every figure bench reports the paper's metric as the
// custom unit "edges/s" (and sets bytes = edges so the standard MB/s
// column reads as millions of edges per second).
//
// Scales default to 12/14/16 so `go test -bench=.` completes in minutes;
// cmd/prbench -sweep runs the paper's full 16–22 range.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/gensuite"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/sparse"
	"repro/internal/vfs"
	"repro/internal/xrand"
	"repro/internal/xsort"
)

// benchScales are the sweep points for the figure benchmarks.
var benchScales = []int{12, 14, 16}

func benchCfg(variant string, scale int) pipeline.Config {
	return pipeline.Config{Scale: scale, Seed: 1, Variant: variant}
}

// reportEdges attaches the paper's metric to a bench that processed
// edges·b.N edges in total.
func reportEdges(b *testing.B, edges uint64) {
	b.SetBytes(int64(edges)) // MB/s column == millions of edges/s
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(edges)*float64(b.N)/sec, "edges/s")
	}
}

// prepare runs the given kernels once on a fresh in-memory FS and returns
// the configured run state for timing later kernels.
func prepare(b *testing.B, cfg pipeline.Config, kernels []pipeline.Kernel) pipeline.Config {
	b.Helper()
	cfg.FS = vfs.NewMem()
	if len(kernels) > 0 {
		if _, err := pipeline.ExecuteKernels(cfg, kernels); err != nil {
			b.Fatal(err)
		}
	}
	return cfg
}

// ---------------------------------------------------------------------------
// Table I

func BenchmarkTableISLOC(b *testing.B) {
	// Table I is static (source lines per variant); the bench verifies the
	// registry is complete and reports the variant count as its metric.
	var n int
	for i := 0; i < b.N; i++ {
		n = len(pipeline.VariantNames())
	}
	if n != 9 {
		b.Fatalf("expected 9 variants, have %d", n)
	}
	b.ReportMetric(float64(n), "variants")
	// The actual table: go run ./cmd/sloc
}

// ---------------------------------------------------------------------------
// Table II

func BenchmarkTableIIRunSizes(b *testing.B) {
	var rows []pipeline.SizeRow
	for i := 0; i < b.N; i++ {
		rows = pipeline.SizeTable(pipeline.PaperScales, 0, 0)
	}
	if len(rows) != 7 || pipeline.HumanBytes(rows[6].MemoryBytes) != "1.6GB" {
		b.Fatal("Table II does not reproduce the paper's published values")
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// ---------------------------------------------------------------------------
// Figures 4-7: per-kernel, per-variant, per-scale sweeps

func BenchmarkFigure4Kernel0(b *testing.B) {
	for _, v := range pipeline.VariantNames() {
		for _, s := range benchScales {
			b.Run(fmt.Sprintf("%s/scale%d", v, s), func(b *testing.B) {
				cfg := prepare(b, benchCfg(v, s), nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.ExecuteKernels(cfg, []pipeline.Kernel{pipeline.K0Generate}); err != nil {
						b.Fatal(err)
					}
				}
				reportEdges(b, cfg.M())
			})
		}
	}
}

func BenchmarkFigure5Kernel1(b *testing.B) {
	for _, v := range pipeline.VariantNames() {
		for _, s := range benchScales {
			b.Run(fmt.Sprintf("%s/scale%d", v, s), func(b *testing.B) {
				cfg := prepare(b, benchCfg(v, s), []pipeline.Kernel{pipeline.K0Generate})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.ExecuteKernels(cfg, []pipeline.Kernel{pipeline.K1Sort}); err != nil {
						b.Fatal(err)
					}
				}
				reportEdges(b, cfg.M())
			})
		}
	}
}

func BenchmarkFigure6Kernel2(b *testing.B) {
	for _, v := range pipeline.VariantNames() {
		for _, s := range benchScales {
			b.Run(fmt.Sprintf("%s/scale%d", v, s), func(b *testing.B) {
				cfg := prepare(b, benchCfg(v, s), []pipeline.Kernel{pipeline.K0Generate, pipeline.K1Sort})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.ExecuteKernels(cfg, []pipeline.Kernel{pipeline.K2Filter}); err != nil {
						b.Fatal(err)
					}
				}
				reportEdges(b, cfg.M())
			})
		}
	}
}

func BenchmarkFigure7Kernel3(b *testing.B) {
	for _, v := range pipeline.VariantNames() {
		for _, s := range benchScales {
			b.Run(fmt.Sprintf("%s/scale%d", v, s), func(b *testing.B) {
				cfg := prepare(b, benchCfg(v, s), []pipeline.Kernel{pipeline.K0Generate, pipeline.K1Sort})
				// Kernel 3 requires kernel 2's in-memory matrix; build it
				// once outside the timer, then time K3 alone via the
				// variant interface.
				variant, err := pipeline.Lookup(v)
				if err != nil {
					b.Fatal(err)
				}
				run := &pipeline.Run{Cfg: cfg, FS: cfg.FS}
				if err := variant.Kernel2(run); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := variant.Kernel3(run); err != nil {
						b.Fatal(err)
					}
				}
				reportEdges(b, 20*cfg.M())
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (paper §V open questions and design choices)

func randomEdges(seed uint64, m int, n uint64) *edge.List {
	g := xrand.New(seed)
	l := edge.NewList(m)
	for i := 0; i < m; i++ {
		l.Append(g.Uint64n(n), g.Uint64n(n))
	}
	return l
}

// "Should the end vertices in kernel 1 also be sorted?"
func BenchmarkAblationSortUVsUV(b *testing.B) {
	src := randomEdges(1, 1<<18, 1<<18)
	work := src.Clone()
	for _, mode := range []struct {
		name string
		sort func(*edge.List)
	}{
		{"u-only", xsort.RadixByU},
		{"u-and-v", xsort.RadixByUV},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work.U, src.U)
				copy(work.V, src.V)
				mode.sort(work)
			}
			reportEdges(b, uint64(src.Len()))
		})
	}
}

// Radix vs comparison sort (the optimized/naive kernel-1 split).
func BenchmarkAblationRadixVsStdSort(b *testing.B) {
	src := randomEdges(2, 1<<17, 1<<18)
	work := src.Clone()
	for _, mode := range []struct {
		name string
		sort func(*edge.List)
	}{
		{"radix", xsort.RadixByU},
		{"std", xsort.ByU},
		{"parallel", func(l *edge.List) { xsort.ParallelByU(l, 4) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work.U, src.U)
				copy(work.V, src.V)
				mode.sort(work)
			}
			reportEdges(b, uint64(src.Len()))
		})
	}
}

// Scatter (CSR row-major) vs gather (transpose) kernel-3 engines.
func BenchmarkAblationScatterVsGather(b *testing.B) {
	l := randomEdges(3, 16<<12, 1<<12)
	a, err := sparse.FromEdges(l, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	pipeline.ApplyKernel2Filter(a)
	for _, mode := range []struct {
		name string
		run  func() error
	}{
		{"scatter", func() error { _, err := pagerank.Scatter(a, pagerank.Options{}); return err }},
		{"gather", func() error { _, err := pagerank.Gather(a, pagerank.Options{}); return err }},
		{"parallel", func() error { _, err := pagerank.Parallel(a, pagerank.Options{Workers: 4}); return err }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := mode.run(); err != nil {
					b.Fatal(err)
				}
			}
			reportEdges(b, uint64(20*a.NNZ()))
		})
	}
}

// "Should a diagonal entry be added ... to allow convergence?" — the
// related measurable choice: dangling correction on/off.
func BenchmarkAblationDanglingCorrection(b *testing.B) {
	l := randomEdges(4, 16<<12, 1<<12)
	a, _ := sparse.FromEdges(l, 1<<12)
	pipeline.ApplyKernel2Filter(a)
	for _, dangling := range []bool{false, true} {
		b.Run(fmt.Sprintf("dangling=%v", dangling), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pagerank.Gather(a, pagerank.Options{Dangling: dangling}); err != nil {
					b.Fatal(err)
				}
			}
			reportEdges(b, uint64(20*a.NNZ()))
		})
	}
}

// Text vs binary edge encoding (how much of K0/K1 is string handling).
func BenchmarkAblationTextVsBinaryCodec(b *testing.B) {
	l := randomEdges(5, 1<<17, 1<<20)
	for _, codec := range []fastio.Codec{fastio.TSV{}, fastio.NaiveTSV{}, fastio.Binary{}} {
		b.Run(codec.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs := vfs.NewMem()
				if err := fastio.WriteStriped(fs, "e", codec, 1, l); err != nil {
					b.Fatal(err)
				}
				if _, err := fastio.ReadStriped(fs, "e", codec); err != nil {
					b.Fatal(err)
				}
			}
			reportEdges(b, uint64(l.Len()))
		})
	}
}

// Edge-file format ablation on the out-of-core sort: kernel 1 of the
// extsort variant timed under each codec, the Figure-7-style table
// showing the sort going hardware-bound once text parsing leaves the
// loop (and the packed codec trading a little decode work for a third
// of the bytes).
func BenchmarkAblationEdgeFormats(b *testing.B) {
	const scale = 14
	for _, format := range []string{"tsv", "bin", "packed"} {
		b.Run(format, func(b *testing.B) {
			cfg := benchCfg("extsort", scale)
			cfg.Format = format
			cfg.RunEdges = 1 << 16
			cfg = prepare(b, cfg, []pipeline.Kernel{pipeline.K0Generate})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.ExecuteKernels(cfg, []pipeline.Kernel{pipeline.K1Sort}); err != nil {
					b.Fatal(err)
				}
			}
			reportEdges(b, cfg.M())
		})
	}
}

// "Should a more deterministic generator be used in kernel 0?"
func BenchmarkAblationGenerators(b *testing.B) {
	const scale = 14
	gens := []struct {
		name string
		gen  func() (*edge.List, error)
	}{
		{"kronecker", func() (*edge.List, error) { return kronecker.Generate(kronecker.New(scale, 1)) }},
		{"ppl", gensuite.PPL{Scale: scale, EdgeFactor: 16, Seed: 1}.Generate},
		{"er", gensuite.ER{Scale: scale, EdgeFactor: 16, Seed: 1}.Generate},
	}
	for _, g := range gens {
		b.Run(g.name, func(b *testing.B) {
			var m int
			for i := 0; i < b.N; i++ {
				l, err := g.gen()
				if err != nil {
					b.Fatal(err)
				}
				m = l.Len()
			}
			reportEdges(b, uint64(m))
		})
	}
}

// "Are the values of the adjacency matrix required to be floating point
// values?" — compare the float64 product against integer-weight traversal.
func BenchmarkAblationFloatVsIntValues(b *testing.B) {
	l := randomEdges(6, 16<<12, 1<<12)
	a, _ := sparse.FromEdges(l, 1<<12)
	intVals := make([]uint32, len(a.Val))
	for i, v := range a.Val {
		intVals[i] = uint32(v)
	}
	x := pagerank.InitVector(a.N, 1)
	out := make([]float64, a.N)
	b.Run("float64-values", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.VxM(out, x)
		}
		reportEdges(b, uint64(a.NNZ()))
	})
	b.Run("uint32-values", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = 0
			}
			for r := 0; r < a.N; r++ {
				xr := x[r]
				for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
					out[a.Col[k]] += xr * float64(intVals[k])
				}
			}
		}
		reportEdges(b, uint64(a.NNZ()))
	})
}

// Distributed kernel-3 scaling with communication accounting (the paper's
// parallel analysis).
func BenchmarkAblationDistributedProcs(b *testing.B) {
	l, err := kronecker.Generate(kronecker.New(12, 1))
	if err != nil {
		b.Fatal(err)
	}
	n := 1 << 12
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", p), func(b *testing.B) {
			var comm dist.CommStats
			for i := 0; i < b.N; i++ {
				res, err := dist.Run(l, n, p, pagerank.Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Comm
			}
			reportEdges(b, 20*uint64(l.Len()))
			b.ReportMetric(float64(comm.AllReduceBytes+comm.BroadcastBytes)/1e6, "commMB")
		})
	}
}

// Hybrid intra-rank scaling of the distributed kernel 3: p goroutine
// ranks × w workers per rank (dist.Config.Workers).  Results are
// bit-for-bit invariant in w; only wall clock moves.  ReportAllocs makes
// the steady-state allocation budget visible in the bench output.
func BenchmarkAblationHybridRankWorkers(b *testing.B) {
	l, err := kronecker.Generate(kronecker.New(13, 1))
	if err != nil {
		b.Fatal(err)
	}
	n := 1 << 13
	built, err := dist.BuildFiltered(l, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("procs=%d/workers=%d", p, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := dist.Config{Mode: dist.ExecGoroutine, Workers: w}
					if _, err := dist.RunMatrixCfg(cfg, built.Matrix, p, pagerank.Options{Seed: 1}); err != nil {
						b.Fatal(err)
					}
				}
				reportEdges(b, 20*uint64(built.Matrix.NNZ()))
			})
		}
	}
}

// Warm Service runs against the staged artifact cache: one cold run
// deposits the kernel-2 matrix, then every timed iteration is a pure
// kernel-3 run served from the cache.  Compare against
// BenchmarkFigure7Kernel3 csr/scale14 — the warm run should track it,
// the cache fetch adding only noise.
func BenchmarkServiceWarmRun(b *testing.B) {
	const scale = 14
	svc := core.NewService(core.WithMaxConcurrent(1))
	defer svc.Close()
	ctx := context.Background()
	cfg := core.Config{Scale: scale, Seed: 1, Variant: "csr"}
	if _, err := svc.Run(ctx, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Run(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cache == nil || res.Cache.Matrix.Hits != 1 {
			b.Fatalf("warm run missed the matrix stage: %+v", res.Cache)
		}
	}
	reportEdges(b, 20*cfg.M())
}

// Hardware-model prediction vs measurement for kernel 3 (paper §V:
// performance predictions from simple hardware models).
func BenchmarkPerfModelKernel3VsMeasured(b *testing.B) {
	const scale = 14
	cfg := prepare(b, benchCfg("csr", scale), []pipeline.Kernel{pipeline.K0Generate, pipeline.K1Sort})
	variant, _ := pipeline.Lookup("csr")
	run := &pipeline.Run{Cfg: cfg, FS: cfg.FS}
	if err := variant.Kernel2(run); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := variant.Kernel3(run); err != nil {
			b.Fatal(err)
		}
	}
	reportEdges(b, 20*cfg.M())
	pred := perfmodel.Kernel3(perfmodel.PaperNode(), perfmodel.Workload{Scale: scale})
	b.ReportMetric(pred.EdgesPerSecond, "predicted-edges/s")
}
