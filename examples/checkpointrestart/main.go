// Checkpointrestart: the paper's Figure 2 lists create / stop / checkpoint
// / restart among the administrative operations big-data systems must
// support.  This example runs kernels 0-2, starts the 20-iteration
// PageRank, stops it after 7 iterations, checkpoints the state to disk,
// "restarts the system" (reloads everything from storage), resumes the
// remaining 13 iterations, and proves the result is bit-identical to an
// uninterrupted run.
//
//	go run ./examples/checkpointrestart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/pagerank"
	"repro/internal/pipeline"
	"repro/internal/vfs"
)

func main() {
	dir, err := os.MkdirTemp("", "prpipeline-checkpoint-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fsys, err := vfs.NewDir(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Kernels 0-2 produce the matrix.
	cfg := pipeline.Config{Scale: 12, Seed: 4, Variant: "csr", FS: fsys}
	variant, err := pipeline.Lookup("csr")
	if err != nil {
		log.Fatal(err)
	}
	run := &pipeline.Run{Cfg: mustDefaults(cfg), FS: fsys}
	for _, step := range []func(*pipeline.Run) error{variant.Kernel0, variant.Kernel1, variant.Kernel2} {
		if err := step(run); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("kernels 0-2 complete: %d nonzeros in the filtered matrix\n", run.Matrix.NNZ())

	// Start kernel 3, stop after 7 of 20 iterations.
	const stopAt, total = 7, 20
	partial, err := pagerank.Gather(run.Matrix, pagerank.Options{Seed: 4, Iterations: stopAt})
	if err != nil {
		log.Fatal(err)
	}
	cp := &pipeline.Checkpoint{
		Matrix:              run.Matrix,
		Rank:                partial.Rank,
		CompletedIterations: stopAt,
		Damping:             pagerank.DefaultDamping,
	}
	if err := pipeline.Save(fsys, "checkpoints/run42", cp); err != nil {
		log.Fatal(err)
	}
	sz, _ := fsys.Size("checkpoints/run42.matrix")
	fmt.Printf("stopped after %d iterations; checkpoint written (%d-byte matrix file)\n", stopAt, sz)

	// "Restart": load from storage and resume.
	loaded, err := pipeline.Load(fsys, "checkpoints/run42")
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := pipeline.Resume(loaded, total, pagerank.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed to %d total iterations\n", resumed.Iterations)

	// Ground truth: uninterrupted run.
	full, err := pagerank.Gather(run.Matrix, pagerank.Options{Seed: 4, Iterations: total})
	if err != nil {
		log.Fatal(err)
	}
	for i := range full.Rank {
		if full.Rank[i] != resumed.Rank[i] {
			log.Fatalf("resumed run diverged at vertex %d: %v vs %v", i, resumed.Rank[i], full.Rank[i])
		}
	}
	fmt.Println("resumed result is bit-identical to the uninterrupted 20-iteration run.")
}

// mustDefaults applies the config defaults (validation already done by the
// caller's construction).
func mustDefaults(cfg pipeline.Config) pipeline.Config {
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	// Validate fills nothing; Run/ExecuteKernels normally default the
	// config.  For direct variant driving we only need FS and the sizes,
	// which are already set; Variant/NFiles defaults:
	if cfg.NFiles == 0 {
		cfg.NFiles = 1
	}
	if cfg.EdgeFactor == 0 {
		cfg.EdgeFactor = 16
	}
	if cfg.Generator == "" {
		cfg.Generator = pipeline.GenKronecker
	}
	return cfg
}
