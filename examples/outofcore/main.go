// Outofcore: the paper's "u and v too large to fit in memory" regime.
// This example runs the extsort variant against real disk files with a
// deliberately tiny in-memory run buffer, forcing the external merge sort
// to spill and merge many runs, then verifies the result matches the
// in-memory variant bit for bit.
//
//	go run ./examples/outofcore
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/pagerank"
	"repro/internal/vfs"
)

func main() {
	dir, err := os.MkdirTemp("", "prpipeline-outofcore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fsys, err := vfs.NewDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	svc := core.NewService()
	defer svc.Close()

	const scale = 14 // M = 262144 edges
	cfg := core.Config{
		Scale:    scale,
		Seed:     9,
		NFiles:   4,
		Variant:  "extsort",
		FS:       fsys,
		RunEdges: 8 << 10, // pretend only 8Ki edges (128 KiB) fit in RAM -> ~32 spill runs
		KeepRank: true,
		PageRank: pagerank.Options{Seed: 9},
	}
	fmt.Printf("out-of-core pipeline: scale %d, run buffer %d edges (~%d KiB of 'RAM')\n",
		scale, cfg.RunEdges, cfg.RunEdges*16/1024)
	res, err := svc.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range res.Kernels {
		fmt.Printf("  %-18s %8.3fs   %.4g edges/s\n", k.Kernel, k.Seconds, k.EdgesPerSecond)
	}

	// Ground truth: the fully in-memory optimized variant on the same
	// seed must produce the identical matrix and (up to FP reassociation)
	// the same ranks.  The extsort run above deposited its kernel-2
	// matrix in the service's staged cache, so a csr run through svc
	// would be served that very artifact — validating it against itself.
	// RunOnce uses a throwaway service: genuinely independent.
	ref, err := core.RunOnce(ctx, core.Config{
		Scale: scale, Seed: 9, Variant: "csr", KeepRank: true,
		PageRank: pagerank.Options{Seed: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	if ref.Cache != nil && ref.Cache.Matrix.Hits > 0 {
		log.Fatalf("expected an independent validation run, but it hit a cache: %+v", ref.Cache)
	}
	if res.NNZ != ref.NNZ {
		log.Fatalf("NNZ mismatch: out-of-core %d vs in-memory %d", res.NNZ, ref.NNZ)
	}
	var maxDiff float64
	for i := range ref.Rank {
		if d := math.Abs(res.Rank[i] - ref.Rank[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nvalidation: matrix NNZ identical (%d); max rank deviation vs in-memory: %.2g\n",
		res.NNZ, maxDiff)
	if maxDiff > 1e-9 {
		log.Fatal("out-of-core result diverged from in-memory result")
	}
	fmt.Println("out-of-core and in-memory pipelines agree.")
}
