// Quickstart: run the full four-kernel PageRank pipeline benchmark at a
// laptop-friendly scale through the core.Service session API and print
// the paper's per-kernel metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/results"
)

func main() {
	// One long-lived Service fronts every run: it bounds concurrency,
	// owns the shared generator cache, and threads ctx down to the
	// kernels so Ctrl-C-style cancellation aborts mid-run.
	ctx := context.Background()
	svc := core.NewService()
	defer svc.Close()

	// Scale 14: N = 16K vertices, M = 262K edges — a subsecond run.
	cfg := core.Config{
		Scale:   14,
		Seed:    1,
		NFiles:  2,     // the paper's free parameter: edge files per kernel
		Variant: "csr", // the optimized implementation
	}
	res, err := svc.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	t := results.NewTable(
		fmt.Sprintf("PageRank pipeline benchmark, scale %d (N=%s, M=%s)",
			cfg.Scale, pipeline.HumanCount(cfg.N()), pipeline.HumanCount(cfg.M())),
		"kernel", "seconds", "edges/second")
	for _, k := range res.Kernels {
		t.AddRow(k.Kernel.String(), fmt.Sprintf("%.4f", k.Seconds), fmt.Sprintf("%.4g", k.EdgesPerSecond))
	}
	fmt.Print(t.Plain())

	fmt.Printf("\nmatrix mass before filtering: %.0f (must equal M = %d)\n", res.MatrixMass, cfg.M())
	fmt.Printf("stored entries after filtering: %d (< M because of duplicate collisions and filtering)\n", res.NNZ)
	fmt.Printf("PageRank iterations: %d (fixed, per the benchmark definition)\n", res.RankIterations)

	// The same pipeline through every registered implementation variant.
	// All the scale-12 runs share one (scale 12, seed 1) graph through
	// the service's staged artifact cache: the first run computes and
	// deposits the kernel-2 matrix, and every later participant starts
	// straight at kernel 3 — res.Cache says which stage each run hit.
	// The parallel variant opts out (its generator draws a different
	// edge multiset per worker count) and recomputes everything.
	fmt.Println("\nkernel-3 rate by implementation variant:")
	for _, v := range core.Variants() {
		vres, err := svc.Run(ctx, core.Config{Scale: 12, Seed: 1, Variant: v})
		if err != nil {
			log.Fatal(err)
		}
		k3 := vres.KernelResultFor(core.K3PageRank)
		from := "computed all kernels"
		switch {
		case vres.Cache == nil:
			from = "cache opt-out, recomputed"
		case vres.Cache.Matrix.Hits > 0:
			from = "cached K2 matrix"
		case vres.Cache.Sorted.Hits > 0:
			from = "cached K1 sorted edges"
		case vres.Cache.Edges.Hits > 0:
			from = "cached K0 edges"
		}
		fmt.Printf("  %-10s %.4g edges/s (%s)\n", v, k3.EdgesPerSecond, from)
	}
	st := svc.Stats()
	fmt.Printf("\nservice totals: %d runs; cache hits/misses: edges %d/%d, sorted %d/%d, matrix %d/%d (%d bytes resident)\n",
		st.RunsStarted,
		st.CacheEdges.Hits, st.CacheEdges.Misses,
		st.CacheSorted.Hits, st.CacheSorted.Misses,
		st.CacheMatrix.Hits, st.CacheMatrix.Misses,
		st.CacheBytes)
}
