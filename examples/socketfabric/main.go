// Socketfabric: the paper's communication model, metered on a real
// network.  This example runs the distributed kernel 2+3 pipeline in the
// socket execution mode with an *external* fabric — the coordinator
// listens on a unix-domain socket and three separately started worker
// processes join it, exactly the `cmd/prrankd` deployment — and then
// proves the three claims DESIGN.md §13 makes:
//
//  1. the final ranks are bit-for-bit equal to the goroutine mode's;
//  2. the payload bytes measured on the wire equal the metered CommStats
//     exactly;
//  3. the collective traffic (all-reduce + broadcast) equals the paper's
//     closed-form PredictedCommBytes, byte for byte.
//
// The worker side is this same binary re-run with -worker, which calls
// dist.JoinFabric just as prrankd does; in a real deployment the workers
// would be `prrankd -join <addr> -fabric <id>` on other hosts (with
// -network tcp).
//
//	go run ./examples/socketfabric
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
)

const (
	procs    = 3
	scale    = 10
	fabricID = "socketfabric-example"
)

func main() {
	worker := flag.Bool("worker", false, "join the fabric as a worker rank (internal; what cmd/prrankd does)")
	join := flag.String("join", "", "coordinator address (with -worker)")
	flag.Parse()
	if *worker {
		if err := dist.JoinFabric(context.Background(), "unix", *join, fabricID); err != nil {
			log.Fatal("worker: ", err)
		}
		return
	}

	cfg := kronecker.New(scale, 42)
	l, err := kronecker.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := int(cfg.N())
	opt := pagerank.Options{Seed: 42, Iterations: 12, Dangling: true}

	// The reference: the same schedule on goroutine ranks (in-process).
	ref, err := dist.Execute(context.Background(), dist.Spec{
		Config: dist.Config{Mode: dist.ExecGoroutine},
		Op:     dist.OpRun, Edges: l, N: n, Procs: procs, PageRank: opt,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The socket run: listen on a private unix socket, and start the
	// three workers ourselves once the address is known — the external
	// workflow, with this binary standing in for prrankd.
	dir, err := os.MkdirTemp("", "socketfabric-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var workers []*exec.Cmd
	out, err := dist.Execute(context.Background(), dist.Spec{
		Config: dist.Config{Mode: dist.ExecSocket},
		Op:     dist.OpRun, Edges: l, N: n, Procs: procs, PageRank: opt,
		Socket: dist.SocketSpec{
			Network:  "unix",
			Addr:     filepath.Join(dir, "coord.sock"),
			External: true,
			FabricID: fabricID,
			OnListen: func(network, addr string) {
				fmt.Printf("coordinator listening on %s://%s\n", network, addr)
				self, err := os.Executable()
				if err != nil {
					log.Fatal(err)
				}
				for r := 0; r < procs; r++ {
					cmd := exec.Command(self, "-worker", "-join", addr)
					cmd.Stderr = os.Stderr
					if err := cmd.Start(); err != nil {
						log.Fatal("starting worker: ", err)
					}
					workers = append(workers, cmd)
				}
				fmt.Printf("started %d external workers (the prrankd role)\n", procs)
			},
		},
	})
	for _, cmd := range workers {
		cmd.Wait()
	}
	if err != nil {
		log.Fatal(err)
	}

	a, b := ref.Run, out.Run
	for i := range a.Rank {
		if a.Rank[i] != b.Rank[i] {
			log.Fatalf("rank[%d] differs between goroutine and socket modes", i)
		}
	}
	fmt.Printf("ranks:     bit-for-bit equal to the goroutine mode (%d vertices)\n", len(b.Rank))

	metered := b.Comm.AllToAllBytes + b.Comm.AllReduceBytes + b.Comm.BroadcastBytes
	fmt.Printf("wire:      %d payload bytes measured over %d frames\n", b.Wire.DataBytes, b.Wire.Frames)
	fmt.Printf("metered:   %d bytes in CommStats\n", metered)
	if b.Wire.DataBytes != metered {
		log.Fatal("measured wire bytes do not equal the metered comm bytes")
	}

	predicted := dist.PredictedCommBytes(n, procs, b.Iterations, true)
	collective := b.Comm.AllReduceBytes + b.Comm.BroadcastBytes
	fmt.Printf("predicted: %d collective bytes (closed form), measured %d\n", predicted, collective)
	if collective != predicted {
		log.Fatal("measured collective bytes do not equal PredictedCommBytes")
	}
	fmt.Println("the comm model held on a real network, byte for byte")
}
