// Service: the production-shaped session API — one long-lived
// core.Service handling many concurrent benchmark runs.
//
// Four scenes:
//
//  1. Fan-in: eight concurrent runs of the same graph through different
//     variants.  The service's staged artifact cache singleflights the
//     shared kernel-2 matrix: one run computes it, the other seven join
//     the in-flight fill (1 miss, 7 hits) while the admission queue
//     caps how many execute at a time.
//
//  2. Warm run: the same configuration again is served straight from
//     the cached matrix — kernels 0-2 never run, only kernel 3
//     executes.
//
//  3. Streaming: a warm run observed live through RunStream — the
//     cache-hit event, then per-kernel boundaries and per-iteration
//     kernel-3 ticks instead of "wait for the whole Result".
//
//  4. Cancellation: a run cancelled mid-kernel-3 returns
//     context.Canceled promptly, in the goroutine-rank execution mode,
//     with every rank goroutine torn down.
//
//     go run ./examples/service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/pagerank"
)

func main() {
	ctx := context.Background()
	svc := core.NewService(core.WithMaxConcurrent(4))
	defer svc.Close()

	// --- Scene 1: eight concurrent runs, one computed matrix. ---------
	// ("parallel" is absent by design: it generates with per-worker jump
	// streams — a different edge multiset per worker count — so it opts
	// out of every cache stage.  extsort streams kernel 0 in bounded
	// memory, skipping the list stages, but shares the canonical
	// kernel-2 matrix like everyone else.)
	variants := []string{"csr", "coo", "columnar", "distext", "graphblas", "dist", "distgo", "extsort"}
	results := make([]*core.Result, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v string) {
			defer wg.Done()
			res, err := svc.Run(ctx, core.Config{Scale: 12, Seed: 7, Variant: v})
			if err != nil {
				log.Fatalf("variant %s: %v", v, err)
			}
			results[i] = res
		}(i, v)
	}
	wg.Wait()
	fmt.Printf("%d concurrent runs (max 4 executing at once):\n", len(variants))
	for i, v := range variants {
		k3 := results[i].KernelResultFor(core.K3PageRank)
		fmt.Printf("  %-10s nnz=%d  %.4g edges/s\n", v, results[i].NNZ, k3.EdgesPerSecond)
	}
	st := svc.Stats()
	fmt.Printf("staged cache after the batch: matrix %d miss / %d hits — kernels 0-2 ran once for all %d runs (%d bytes resident)\n\n",
		st.CacheMatrix.Misses, st.CacheMatrix.Hits, len(variants), st.CacheBytes)

	// --- Scene 2: a warm run is kernel-3-bound. -----------------------
	warm, err := svc.Run(ctx, core.Config{Scale: 12, Seed: 7, Variant: "csr"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm csr run: hit the cached kernel-2 matrix (matrix %d hit), executed %d kernel(s):\n",
		warm.Cache.Matrix.Hits, len(warm.Kernels))
	for _, k := range warm.Kernels {
		fmt.Printf("  %-18v %.4fs\n", k.Kernel, k.Seconds)
	}
	fmt.Println()

	// --- Scene 3: streaming progress (warm). --------------------------
	fmt.Println("streaming one distgo run:")
	iterations := 0
	for ev := range svc.RunStream(ctx, core.Config{Scale: 12, Seed: 7, Variant: "distgo"}) {
		switch ev.Kind {
		case core.EventRunStarted:
			fmt.Println("  run started (cleared admission)")
		case core.EventCacheHit:
			fmt.Printf("  cache hit at %v — kernels 0-2 skipped\n", ev.Kernel)
		case core.EventKernelEnd:
			fmt.Printf("  %-18v %.4fs\n", ev.Kernel, ev.KernelResult.Seconds)
		case core.EventIteration:
			iterations++ // one tick per PageRank iteration
		case core.EventRunEnd:
			if ev.Err != nil {
				log.Fatal(ev.Err)
			}
			fmt.Printf("  run done: %d iteration events, %d nonzeros\n\n", iterations, ev.Result.NNZ)
		}
	}

	// --- Scene 4: cancellation mid-kernel-3. --------------------------
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cfg := core.Config{
		Scale: 12, Seed: 7, Variant: "distgo",
		PageRank: pagerank.Options{Iterations: 1000},
	}
	_, err = svc.Run(cctx, cfg, core.WithProgress(func(ev core.PipelineEvent) {
		if ev.Kind == core.EventPipelineIteration && ev.Iteration == 3 {
			cancel() // pull the plug three iterations into kernel 3
		}
	}))
	fmt.Printf("cancelled mid-K3: err = %v (context.Canceled: %v)\n", err, errors.Is(err, context.Canceled))
}
