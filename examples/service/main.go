// Service: the production-shaped session API — one long-lived
// core.Service handling many concurrent benchmark runs.
//
// Three scenes:
//
//  1. Fan-in: seven concurrent runs of the same graph through different
//     variants.  The service's singleflight generator cache makes the
//     whole batch generate kernel 0 exactly once (1 miss, 6 hits) while
//     the admission queue caps how many execute at a time.
//
//  2. Streaming: one run observed live through RunStream — per-kernel
//     boundaries and per-iteration kernel-3 ticks instead of "wait for
//     the whole Result".
//
//  3. Cancellation: a run cancelled mid-kernel-3 returns
//     context.Canceled promptly, in the goroutine-rank execution mode,
//     with every rank goroutine torn down.
//
//     go run ./examples/service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/pagerank"
)

func main() {
	ctx := context.Background()
	svc := core.NewService(core.WithMaxConcurrent(4))
	defer svc.Close()

	// --- Scene 1: seven concurrent runs, one generated graph. ---------
	// ("parallel" and "extsort" are absent by design: the former
	// generates with per-worker jump streams — a different edge order —
	// and the latter streams kernel 0 in bounded memory; both bypass
	// the shared cache.)
	variants := []string{"csr", "coo", "columnar", "distext", "graphblas", "dist", "distgo"}
	results := make([]*core.Result, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v string) {
			defer wg.Done()
			res, err := svc.Run(ctx, core.Config{Scale: 12, Seed: 7, Variant: v})
			if err != nil {
				log.Fatalf("variant %s: %v", v, err)
			}
			results[i] = res
		}(i, v)
	}
	wg.Wait()
	fmt.Printf("%d concurrent runs (max 4 executing at once):\n", len(variants))
	for i, v := range variants {
		k3 := results[i].KernelResultFor(core.K3PageRank)
		fmt.Printf("  %-10s nnz=%d  %.4g edges/s\n", v, results[i].NNZ, k3.EdgesPerSecond)
	}
	st := svc.Stats()
	fmt.Printf("generator cache after the batch: %d misses, %d hits — kernel 0 ran once for all %d runs\n\n",
		st.CacheMisses, st.CacheHits, len(variants))

	// --- Scene 2: streaming progress. ---------------------------------
	fmt.Println("streaming one distgo run:")
	iterations := 0
	for ev := range svc.RunStream(ctx, core.Config{Scale: 12, Seed: 7, Variant: "distgo"}) {
		switch ev.Kind {
		case core.EventRunStarted:
			fmt.Println("  run started (cleared admission)")
		case core.EventKernelEnd:
			fmt.Printf("  %-18v %.4fs\n", ev.Kernel, ev.KernelResult.Seconds)
		case core.EventIteration:
			iterations++ // one tick per PageRank iteration
		case core.EventRunEnd:
			if ev.Err != nil {
				log.Fatal(ev.Err)
			}
			fmt.Printf("  run done: %d iteration events, %d nonzeros\n\n", iterations, ev.Result.NNZ)
		}
	}

	// --- Scene 3: cancellation mid-kernel-3. --------------------------
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cfg := core.Config{
		Scale: 12, Seed: 7, Variant: "distgo",
		PageRank: pagerank.Options{Iterations: 1000},
	}
	_, err := svc.Run(cctx, cfg, core.WithProgress(func(ev core.PipelineEvent) {
		if ev.Kind == core.EventPipelineIteration && ev.Iteration == 3 {
			cancel() // pull the plug three iterations into kernel 3
		}
	}))
	fmt.Printf("cancelled mid-K3: err = %v (context.Canceled: %v)\n", err, errors.Is(err, context.Canceled))
}
