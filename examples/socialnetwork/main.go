// Socialnetwork: PageRank beyond the web (paper §III cites social-network
// analysis as a primary application).  This example builds a synthetic
// follower graph with the deterministic perfect-power-law generator,
// contrasts its degree statistics with an Erdős–Rényi control, runs the
// pipeline's PageRank, and shows that rank correlates with — but is not
// identical to — raw popularity (in-degree).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/gensuite"
	"repro/internal/pagerank"
	"repro/internal/pipeline"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	// 4096 accounts; an edge u->v means "u follows v", so PageRank flows
	// along follow edges and accumulates at influential accounts.
	gen := gensuite.PPL{Scale: 12, EdgeFactor: 16, Alpha: 1.0, Seed: 5}
	follows, err := gen.Generate()
	if err != nil {
		log.Fatal(err)
	}
	n := int(gen.NumVertices())
	fmt.Printf("follower graph: %d accounts, %d follow edges (deterministic PPL)\n", n, follows.Len())

	// Degree statistics: the PPL graph is heavy-tailed, the ER control is
	// not.  Kernel 2's super-node elimination exists exactly because of
	// this skew.
	outDeg, err := stats.OutDegrees(follows, n)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := stats.FitPowerLaw(stats.NewHistogram(positive(outDeg)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-degree power-law fit: slope %.2f (R² %.3f), Gini %.3f\n",
		fit.Slope, fit.R2, stats.GiniCoefficient(outDeg))

	er := gensuite.ER{Scale: 12, EdgeFactor: 16, Seed: 5}
	erEdges, err := er.Generate()
	if err != nil {
		log.Fatal(err)
	}
	erDeg, err := stats.OutDegrees(erEdges, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Erdős–Rényi control Gini: %.3f (near-uniform degrees)\n\n", stats.GiniCoefficient(erDeg))

	// Pipeline kernels 2-3 on the follower graph.
	a, err := sparse.FromEdges(follows, n)
	if err != nil {
		log.Fatal(err)
	}
	inDeg := a.InDegrees() // popularity before filtering
	pipeline.ApplyKernel2Filter(a)
	res, err := pagerank.Gather(a, pagerank.Options{Seed: 1, Iterations: 100, Dangling: true})
	if err != nil {
		log.Fatal(err)
	}

	// Influence (PageRank) vs. popularity (in-degree).
	accounts := make([]account, n)
	for i := range accounts {
		accounts[i] = account{i, res.Rank[i], inDeg[i]}
	}
	sort.Slice(accounts, func(i, j int) bool { return accounts[i].rank > accounts[j].rank })
	fmt.Println("top influencers by PageRank:")
	fmt.Println("  account   rank       in-degree")
	for i := 0; i < 8; i++ {
		a := accounts[i]
		fmt.Printf("  %-8d  %.6f   %.0f\n", a.id, a.rank, a.in)
	}
	fmt.Printf("\nrank/in-degree Spearman-style agreement in the top 100: %.0f%%\n",
		overlapPercent(accounts, inDeg, 100))
}

func positive(v []int) []int {
	var out []int
	for _, x := range v {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

// account pairs an id with its PageRank and in-degree.
type account struct {
	id   int
	rank float64
	in   float64
}

// overlapPercent reports how much of the top-k by rank is also top-k by
// in-degree.
func overlapPercent(byRank []account, inDeg []float64, k int) float64 {
	type pop struct {
		id int
		in float64
	}
	pops := make([]pop, len(inDeg))
	for i, d := range inDeg {
		pops[i] = pop{i, d}
	}
	sort.Slice(pops, func(i, j int) bool { return pops[i].in > pops[j].in })
	topPop := make(map[int]bool, k)
	for i := 0; i < k && i < len(pops); i++ {
		topPop[pops[i].id] = true
	}
	hits := 0
	for i := 0; i < k && i < len(byRank); i++ {
		if topPop[byRank[i].id] {
			hits++
		}
	}
	return 100 * float64(hits) / float64(k)
}
