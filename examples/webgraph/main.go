// Webgraph: the paper's original PageRank use case — ranking pages of a
// hyperlink graph.  This example generates a power-law "web crawl",
// pipelines it through kernels 1-3, extracts the top-ranked pages, and
// performs the paper's dense eigenvector validation (§IV.D): the
// 1-norm-normalized rank vector must match the dominant eigenvector of
// c·Aᵀ + (1-c)/N.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/pipeline"
	"repro/internal/sparse"
)

func main() {
	// A small crawl so the dense eigensolver stays cheap: 1024 "pages".
	cfg := kronecker.New(10, 7)
	edges, err := kronecker.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := int(cfg.N())
	fmt.Printf("crawled %d links over %d pages\n", edges.Len(), n)

	// Kernel 2: adjacency matrix, super-node/leaf elimination, row
	// normalization.
	a, err := sparse.FromEdges(edges, n)
	if err != nil {
		log.Fatal(err)
	}
	st := pipeline.ApplyKernel2Filter(a)
	fmt.Printf("filtered %d super-node column(s) (max in-degree %.0f) and %d leaf column(s)\n",
		st.SuperNodeColumns, st.MaxInDegree, st.LeafColumns)

	// Kernel 3, benchmark definition: 20 iterations, no dangling
	// correction.
	res, err := pagerank.Gather(a, pagerank.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	printTop("top pages after the benchmark's 20 iterations", res.Rank, 5)

	// Production setting: iterate to convergence with the dangling-node
	// correction so rank mass is conserved.
	conv, err := pagerank.Gather(a, pagerank.Options{
		Seed: 3, Iterations: 500, Tolerance: 1e-12, Dangling: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged in %d iterations (final 1-norm diff %.2g); total rank mass %.6f\n",
		conv.Iterations, conv.FinalDiff, sparse.Sum(conv.Rank))

	// Paper validation: compare against the dense dominant eigenvector.
	diff, err := pagerank.CompareWithEigen(res.Rank, a, pagerank.EigenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |r - r1| against the dense eigenvector after 20 iterations: %.2g\n", diff)
	long, err := pagerank.Gather(a, pagerank.Options{Seed: 3, Iterations: 300})
	if err != nil {
		log.Fatal(err)
	}
	diffLong, err := pagerank.CompareWithEigen(long.Rank, a, pagerank.EigenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |r - r1| after 300 iterations: %.2g (the iteration converges to the eigenvector)\n", diffLong)
}

func printTop(title string, rank []float64, k int) {
	type pr struct {
		page int
		r    float64
	}
	all := make([]pr, len(rank))
	for i, r := range rank {
		all[i] = pr{i, r}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	fmt.Println(title + ":")
	for i := 0; i < k && i < len(all); i++ {
		fmt.Printf("  %d. page %-6d rank %.6g\n", i+1, all[i].page, all[i].r)
	}
}
