package repro

// Cross-module integration tests: scenarios that span generation, storage,
// sorting, filtering, PageRank, distribution and validation together, the
// way a benchmark user would drive the system.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fastio"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/pipeline"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

func TestIntegrationFullMatrixOfVariantsAndGenerators(t *testing.T) {
	for _, gen := range []pipeline.GeneratorKind{pipeline.GenKronecker, pipeline.GenPPL, pipeline.GenER} {
		for _, v := range core.Variants() {
			cfg := core.Config{Scale: 6, EdgeFactor: 8, Seed: 3, Variant: v, Generator: gen, KeepRank: true}
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", gen, v, err)
			}
			if res.MatrixMass != float64(cfg.M()) {
				t.Errorf("%s/%s: mass %v != %d", gen, v, res.MatrixMass, cfg.M())
			}
			var sum float64
			for _, r := range res.Rank {
				sum += r
			}
			if sum <= 0 || sum > 1.000001 {
				t.Errorf("%s/%s: rank mass %v", gen, v, sum)
			}
		}
	}
}

func TestIntegrationVariantCrossProductMatrixIdentity(t *testing.T) {
	// Every serial variant's kernel 2 must produce the same matrix from
	// the same kernel-1 files (shared FS, mixed variants).
	fs := vfs.NewMem()
	cfg := core.Config{Scale: 7, EdgeFactor: 8, Seed: 11, Variant: "csr", FS: fs}
	if _, err := core.RunKernels(cfg, []core.Kernel{core.K0Generate, core.K1Sort}); err != nil {
		t.Fatal(err)
	}
	var ref *sparse.CSR
	for _, name := range []string{"csr", "columnar", "graphblas", "extsort"} {
		v, err := pipeline.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		c2 := cfg
		c2.Variant = name
		run := &pipeline.Run{Cfg: c2, FS: fs}
		if err := v.Kernel2(run); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ref == nil {
			ref = run.Matrix
			continue
		}
		if run.Matrix.NNZ() != ref.NNZ() {
			t.Fatalf("%s: NNZ %d != %d", name, run.Matrix.NNZ(), ref.NNZ())
		}
		for k := range ref.Val {
			if ref.Col[k] != run.Matrix.Col[k] || math.Abs(ref.Val[k]-run.Matrix.Val[k]) > 1e-12 {
				t.Fatalf("%s: matrix entry %d differs", name, k)
			}
		}
	}
}

func TestIntegrationDistributedSortFeedsDistributedPageRank(t *testing.T) {
	// K0 -> distributed sample sort (K1) -> distributed filter+PageRank
	// (K2+K3): the full parallel pipeline of the paper's analysis.
	kcfg := kronecker.New(9, 13)
	l, err := kronecker.Generate(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	sorted, err := dist.Sort(l, p)
	if err != nil {
		t.Fatal(err)
	}
	if !sorted.Sorted.IsSortedByU() {
		t.Fatal("distributed sort postcondition")
	}
	res, err := dist.Run(sorted.Sorted, int(kcfg.N()), p, pagerank.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference from the same (unsorted) edges.
	a, err := sparse.FromEdges(l, int(kcfg.N()))
	if err != nil {
		t.Fatal(err)
	}
	pipeline.ApplyKernel2Filter(a)
	want, err := pagerank.Scatter(a, pagerank.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Rank {
		if math.Abs(res.Rank[i]-want.Rank[i]) > 1e-9 {
			t.Fatalf("distributed pipeline diverges at %d", i)
		}
	}
	if sorted.Comm.AllToAllBytes == 0 || res.Comm.AllReduceBytes == 0 {
		t.Error("communication not accounted across the distributed pipeline")
	}
}

func TestIntegrationStorageFailurePropagates(t *testing.T) {
	// A disk that dies mid-run must produce an error, not a wrong result.
	for _, budget := range []int64{0, 100, 10_000} {
		fs := vfs.NewFaulty(vfs.NewMem(), budget)
		cfg := core.Config{Scale: 8, Seed: 1, Variant: "csr", FS: fs}
		_, err := core.Run(cfg)
		if err == nil {
			t.Fatalf("budget %d: pipeline succeeded on a failing disk", budget)
		}
		if !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("budget %d: error %v does not wrap the injected failure", budget, err)
		}
	}
}

func TestIntegrationStorageFailureInExternalSort(t *testing.T) {
	// The external sorter spills to storage; a mid-spill failure must
	// surface (budget sized to survive K0 but die during K1 spill).
	mem := vfs.NewMem()
	cfg := core.Config{Scale: 8, Seed: 1, Variant: "extsort", FS: mem, RunEdges: 128}
	if _, err := core.RunKernels(cfg, []core.Kernel{core.K0Generate}); err != nil {
		t.Fatal(err)
	}
	k0Bytes := mem.TotalBytes()
	faulty := vfs.NewFaulty(mem, k0Bytes+k0Bytes/2) // dies partway through K1
	cfg.FS = faulty
	if _, err := core.RunKernels(cfg, []core.Kernel{core.K1Sort}); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("external sort on failing disk: err = %v", err)
	}
}

func TestIntegrationGraph500DegreeSkewDrivesFilter(t *testing.T) {
	// The Kronecker graph's power-law skew is what gives kernel 2's
	// super-node elimination its bite; quantify the interaction.
	cfg := core.Config{Scale: 10, Seed: 4, Variant: "csr", KeepRank: true}
	fs := vfs.NewMem()
	cfg.FS = fs
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	l, err := fastio.ReadStriped(fs, "k1", fastio.TSV{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := stats.InDegrees(l, int(cfg.N()))
	if err != nil {
		t.Fatal(err)
	}
	gini := stats.GiniCoefficient(in)
	if gini < 0.4 {
		t.Errorf("Kronecker in-degree Gini %v too uniform for the filter to matter", gini)
	}
	a, err := sparse.FromSortedEdges(l, int(cfg.N()))
	if err != nil {
		t.Fatal(err)
	}
	st := pipeline.ApplyKernel2Filter(a)
	if st.EntriesZeroed == 0 || st.LeafColumns == 0 || st.SuperNodeColumns == 0 {
		t.Errorf("filter removed nothing meaningful: %+v", st)
	}
}

func TestIntegrationExternalAndDistSortAgreeWithSerial(t *testing.T) {
	// Three independent sorting systems must agree on the sorted-by-U
	// projection of the same input.
	l, err := kronecker.Generate(kronecker.New(8, 21))
	if err != nil {
		t.Fatal(err)
	}
	serial := l.Clone()
	xsort.RadixByU(serial)

	distRes, err := dist.Sort(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	extOut := serial.Clone()
	extOut.Reset()
	_, err = xsort.External(fastio.NewListSource(l), fastio.NewListSink(extOut),
		xsort.ExternalConfig{FS: vfs.NewMem(), RunEdges: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.U {
		if serial.U[i] != distRes.Sorted.U[i] || serial.U[i] != extOut.U[i] {
			t.Fatalf("sorters disagree on U at %d", i)
		}
	}
}

func TestIntegrationValidationCatchesTampering(t *testing.T) {
	// Corrupt the K1 files between kernels; validation must notice.
	fs := vfs.NewMem()
	cfg := core.Config{Scale: 6, EdgeFactor: 4, Seed: 5, Variant: "csr", FS: fs}
	// Run validation once to produce the files (passing).
	rep, err := pipeline.Validate(cfg)
	if err != nil || !rep.Passed {
		t.Fatalf("baseline validation failed: %v %+v", err, rep)
	}
	// Tamper: overwrite a k1 stripe with edges in descending order.
	w, err := fs.Create(fastio.StripeName("k1", fastio.TSV{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("5\t1\n2\t1\n")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Re-read and check the postcondition directly (Validate regenerates
	// files, so check the artifact audit primitive instead).
	k1, err := fastio.ReadStriped(fs, "k1", fastio.TSV{})
	if err != nil {
		t.Fatal(err)
	}
	if k1.IsSortedByU() {
		t.Error("tampered files still look sorted — audit is vacuous")
	}
}

func TestIntegrationHumanReportRendering(t *testing.T) {
	// End-to-end: results rendered through every output format.
	res, err := core.Run(core.Config{Scale: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	rows := core.SizeTable(core.PaperScales, 0, 0)
	if pipeline.HumanCount(rows[0].MaxVertices) != "65K" {
		t.Error("Table II rendering drifted from the paper")
	}
	if !strings.Contains(pipeline.K3PageRank.String(), "pagerank") {
		t.Error("kernel naming")
	}
}
